"""E6 — §4.2 "Service Mobility": handover cost vs client speed.

A client drives a road past a string of APs while downloading from an
OTT server. Three arms, same road, same transport workload:

* **carrier LTE** — the MME masks mobility: the client's IP never
  changes; each handover costs a short radio blackout plus the S-GW
  path-switch update (tunnel re-pointing at an anchor).
* **dLTE + TCP** — each AP change renumbers the client; TCP's 4-tuple
  dies, and the flow pays RTO detection + re-handshake + slow start.
* **dLTE + QUIC** — renumbering too, but the connection ID survives;
  cost is the radio blackout plus one migration probe.

The paper's predicted breakdown — dLTE degrades "as the client's time on
a single AP approaches the same order of magnitude as a round trip to an
in use OTT service" — appears as the dwell/RTT ratio column: QUIC-dLTE
tracks carrier LTE until dwell/RTT nears ~1, and TCP-dLTE collapses far
earlier.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional, Type

from repro.metrics.tables import ResultTable
from repro.mobility.handover import dwell_time_s
from repro.net.addressing import AddressPool
from repro.runner import parallel_map
from repro.net.internet import InternetCore
from repro.net.nodes import Host, Router
from repro.simcore.simulator import Simulator
from repro.transport.base import TransportConnection, TransportDemux
from repro.transport.apps import BulkTransferApp
from repro.transport.quic import QuicConnection, QuicListener
from repro.transport.tcp import TcpConnection, TcpListener

SERVER_ADDR = ipaddress.IPv4Address("203.0.113.10")

#: radio-level interruption of any handover (RRC reconfig + sync)
RADIO_BLACKOUT_S = 0.040
#: extra dLTE cost: re-attach against the local stub (cached keys)
DLTE_REATTACH_S = 0.035
#: re-attach when the source AP pre-shipped the UE context over X2
X2_ASSISTED_REATTACH_S = 0.010
#: extra carrier cost: S-GW path switch round trip at the anchor
CARRIER_PATH_SWITCH_S = 0.050


class CorridorHarness:
    """The road: N AP gateways, an anchor (for the carrier arm), a server."""

    #: client radio rate; rural-realistic and keeps event counts sane
    CLIENT_RATE_BPS = 8e6

    def __init__(self, n_aps: int = 4, seed: int = 1,
                 ap_backhaul_delay_s: float = 0.020,
                 server_access_delay_s: float = 0.010,
                 anchor_access_delay_s: float = 0.030) -> None:
        self.sim = Simulator(seed)
        sim = self.sim
        self.internet = InternetCore(sim)
        self.n_aps = n_aps
        self.ap_routers: List[Router] = []
        self.ap_pools: List[AddressPool] = []
        for i in range(n_aps):
            router = Router(sim, f"ap{i}")
            self.internet.attach(router, f"10.{i + 1}.0.0/16",
                                 access_delay_s=ap_backhaul_delay_s)
            self.ap_routers.append(router)
            self.ap_pools.append(AddressPool(f"10.{i + 1}.0.0/16"))
        # carrier anchor: the S-GW/P-GW the carrier arm's address homes to.
        # Downlink detours internet -> anchor -> (tunnel leg) -> serving AP;
        # the tunnel leg is a direct link whose delay is the anchor-to-AP
        # Internet path it stands for.
        self.anchor = Router(sim, "anchor")
        self.internet.attach(self.anchor, "10.200.0.0/16",
                             access_delay_s=anchor_access_delay_s)
        tunnel_leg_delay = anchor_access_delay_s + ap_backhaul_delay_s
        for router in self.ap_routers:
            self.anchor.connect_bidirectional(router, rate_bps=1e9,
                                              delay_s=tunnel_leg_delay)
        server_edge = Router(sim, "server-edge")
        self.internet.attach(server_edge, "203.0.113.0/24",
                             access_delay_s=server_access_delay_s)
        self.server = Host(sim, "server", SERVER_ADDR)
        self.server.connect_bidirectional(server_edge, rate_bps=1e9,
                                          delay_s=0.5e-3)
        server_edge.add_route(f"{SERVER_ADDR}/32", "server")
        self.client = Host(sim, "client")
        self.client_demux = TransportDemux(self.client)
        self.server_demux = TransportDemux(self.server)
        self.anchor_pool = AddressPool("10.200.0.0/16")
        self._current_ap: Optional[int] = None
        self._overlap_ap: Optional[int] = None

    # -- attachment plumbing ---------------------------------------------------------

    def attach_dlte(self, ap_index: int) -> ipaddress.IPv4Address:
        """Local-breakout attach: new address from the AP's own pool."""
        self._detach()
        router = self.ap_routers[ap_index]
        self.client.connect_bidirectional(router, rate_bps=self.CLIENT_RATE_BPS,
                                          delay_s=5e-3)
        self.client.default_gateway = router.name
        address = self.ap_pools[ap_index].allocate()
        self.client.addresses = [address]
        router.add_route(f"{address}/32", "client")
        self._current_ap = ap_index
        return address

    def attach_carrier(self, ap_index: int,
                       address: Optional[ipaddress.IPv4Address] = None
                       ) -> ipaddress.IPv4Address:
        """Anchored attach: address stays in the anchor's prefix.

        Downlink: internet -> anchor -> internet -> serving AP -> client
        (the tunnel triangle). Uplink goes straight out from the AP, like
        real S1-U uplink through the same anchor — we keep uplink direct
        because the E6 measurement is the downlink flow.
        """
        old_index = self._current_ap
        self._detach()
        router = self.ap_routers[ap_index]
        self.client.connect_bidirectional(router, rate_bps=self.CLIENT_RATE_BPS,
                                          delay_s=5e-3)
        self.client.default_gateway = router.name
        if address is None:
            address = self.anchor_pool.allocate()
        self.client.addresses = [address]
        # path switch: the anchor re-points the tunnel at the serving AP
        for ap in self.ap_routers:
            self.anchor.remove_routes_to(ap.name)
        self.anchor.add_route(f"{address}/32", router.name)
        # clear any stale forwarding route from a previous visit (it
        # would shadow the client route and loop via the anchor)
        router.remove_routes_to("anchor")
        router.add_route(f"{address}/32", "client")
        if old_index is not None and old_index != ap_index:
            # X2-style data forwarding: stragglers that still arrive at
            # the source AP chase the UE via the anchor (which now points
            # at the target), instead of being dropped
            self.ap_routers[old_index].add_route(f"{address}/32", "anchor")
        self._current_ap = ap_index
        return address

    def attach_dlte_overlap(self, ap_index: int) -> ipaddress.IPv4Address:
        """Client-managed soft handoff: hold both APs during the switch.

        §4.2 cites transports with "multiple IP address support for
        client managed handoff": the client associates with the target
        AP *before* leaving the source, so there is no radio blackout at
        all — the transport migrates to the new address while the old
        path still works, then the old attachment is dropped with
        :meth:`drop_overlap`.
        """
        router = self.ap_routers[ap_index]
        self.client.connect_bidirectional(router,
                                          rate_bps=self.CLIENT_RATE_BPS,
                                          delay_s=5e-3)
        address = self.ap_pools[ap_index].allocate()
        router.add_route(f"{address}/32", "client")
        # new address becomes primary; the old one stays reachable
        self.client.addresses = [address] + self.client.addresses
        self.client.default_gateway = router.name
        self._overlap_ap, self._current_ap = self._current_ap, ap_index
        return address

    def drop_overlap(self) -> None:
        """Release the source AP of a soft handoff."""
        old_index = getattr(self, "_overlap_ap", None)
        if old_index is None:
            return
        old = self.ap_routers[old_index]
        self.client.links.pop(old.name, None)
        old.links.pop("client", None)
        old.remove_routes_to("client")
        if len(self.client.addresses) > 1:
            self.client.addresses = self.client.addresses[:1]
        self._overlap_ap = None

    def _detach(self) -> None:
        if self._current_ap is None:
            return
        old = self.ap_routers[self._current_ap]
        self.client.links.pop(old.name, None)
        old.links.pop("client", None)
        old.remove_routes_to("client")
        self._current_ap = None


def _drive(harness: CorridorHarness, arm: str, app: BulkTransferApp,
           dwell_s: float, n_handovers: int):
    """The road trip: handover every ``dwell_s`` seconds."""
    sim = harness.sim
    ap = 0
    for _ in range(n_handovers):
        yield sim.timeout(dwell_s)
        target = (ap + 1) % harness.n_aps
        if arm == "carrier":
            # make-before-break with X2 data forwarding: the old path
            # keeps delivering while the path switch completes, so the
            # transport sees at most a delay bump, never a loss burst
            yield sim.timeout(RADIO_BLACKOUT_S + CARRIER_PATH_SWITCH_S)
            harness.attach_carrier(target, harness.client.addresses[0]
                                   if harness.client.addresses else None)
            # IP unchanged: the transport never notices
        elif arm == "dlte-quic-x2":
            # X2-assisted: the source AP pre-transfers the security
            # context (see DLTEAccessPoint.request_handover), so the
            # target stub admits the client in one local exchange
            harness._detach()
            yield sim.timeout(RADIO_BLACKOUT_S + X2_ASSISTED_REATTACH_S)
            new_addr = harness.attach_dlte(target)
            app.on_address_change(new_addr)
        elif arm == "dlte-quic-mbb":
            # client-managed soft handoff: attach to the target first
            # (the stub re-attach runs while the old AP still serves),
            # migrate, then drop the source — zero blackout
            yield sim.timeout(DLTE_REATTACH_S)
            new_addr = harness.attach_dlte_overlap(target)
            app.on_address_change(new_addr)
            yield sim.timeout(0.200)  # overlap window
            harness.drop_overlap()
        else:
            # dLTE is break-before-make: radio gap + stub re-attach,
            # then a brand-new address
            harness._detach()
            yield sim.timeout(RADIO_BLACKOUT_S + DLTE_REATTACH_S)
            new_addr = harness.attach_dlte(target)
            app.on_address_change(new_addr)
        ap = target


def _run_arm(arm: str, dwell: float, seed: int = 1,
             n_handovers: int = 4) -> Dict[str, float]:
    """One (arm, dwell) cell: returns throughput and stall stats."""
    harness = CorridorHarness(n_aps=4, seed=seed)
    sim = harness.sim
    if arm == "carrier":
        harness.attach_carrier(0)
        conn_cls: Type[TransportConnection] = QuicConnection  # modern stack
        QuicListener(sim, harness.server_demux)
    elif arm == "dlte-tcp":
        harness.attach_dlte(0)
        conn_cls = TcpConnection
        TcpListener(sim, harness.server_demux)
    elif arm in ("dlte-quic", "dlte-quic-x2", "dlte-quic-mbb"):
        harness.attach_dlte(0)
        conn_cls = QuicConnection
        QuicListener(sim, harness.server_demux)
    else:
        raise ValueError(f"unknown arm {arm!r}")

    app = BulkTransferApp(sim, harness.client_demux, SERVER_ADDR, conn_cls,
                          total_bytes=10**9)  # never finishes: measure rate
    app.start()
    warmup = 1.0
    sim.run(until=warmup)
    start_bytes = app._acked_total()
    sim.process(_drive(harness, arm, app, dwell, n_handovers),
                name=f"drive:{arm}")
    duration = dwell * n_handovers + 1.0
    sim.run(until=warmup + duration)
    delivered = app._acked_total() - start_bytes
    stalls = [t1 - t0 for t0, t1 in app.stall_intervals(min_gap_s=0.15)]
    return {
        "throughput_bps": delivered * 8.0 / duration,
        "worst_stall_s": max(stalls, default=0.0),
        "total_stall_s": sum(stalls),
        "reconnects": float(app.reconnects),
        "dwell_s": dwell,
        "window_s": duration,
    }


def _run_cell(task) -> Dict[str, float]:
    """Picklable cell body for :func:`repro.runner.parallel_map`."""
    arm, dwell, seed, n_handovers = task
    return _run_arm(arm, dwell, seed=seed, n_handovers=n_handovers)


def run(dwells_s: Optional[List[float]] = None,
        ap_spacing_m: float = 1000.0, seed: int = 1) -> ResultTable:
    """Throughput + stalls vs per-AP dwell time for the three arms.

    ``speed_m_s`` in the output is the road speed implying each dwell at
    the given AP spacing (speed = spacing / dwell); sweeping dwell
    directly keeps the packet-level simulation tractable at walking
    speeds while still covering the paper's breakdown regime.

    The (arm, dwell) cells are independent simulations with fixed
    per-cell seeds, so under ``--jobs N`` they fan out over workers
    (dwell as the cost hint: the 30 s cells dominate) and the table is
    byte-identical to a serial run.
    """
    dwells = dwells_s or [30.0, 10.0, 3.0, 1.0]
    table = ResultTable(
        "E6: mobility — flow disruption vs client speed "
        f"(AP spacing {ap_spacing_m:g} m)",
        ["arm", "speed_m_s", "dwell_s", "dwell_over_rtt",
         "throughput_mbps", "worst_stall_s", "stall_fraction",
         "reconnects"])
    ott_rtt = 0.07  # measured: client <-> server over this harness
    cells = [(arm, dwell, seed, 4)
             for arm in ("carrier", "dlte-tcp", "dlte-quic")
             for dwell in dwells]
    results = parallel_map(_run_cell, cells,
                           costs=[dwell for _, dwell, _, _ in cells])
    for (arm, dwell, _, _), stats in zip(cells, results):
        table.add_row(
            arm=arm, speed_m_s=ap_spacing_m / dwell,
            dwell_s=stats["dwell_s"],
            dwell_over_rtt=stats["dwell_s"] / ott_rtt,
            throughput_mbps=stats["throughput_bps"] / 1e6,
            worst_stall_s=stats["worst_stall_s"],
            stall_fraction=stats["total_stall_s"] / stats["window_s"],
            reconnects=stats["reconnects"])
    return table


def make_before_break(dwells_s: Optional[List[float]] = None) -> ResultTable:
    """§4.2 extension: hard vs soft handoff over QUIC.

    The soft (make-before-break) variant holds both APs through the
    switch, eliminating the radio blackout entirely — multiple-address
    support doing exactly what the paper hopes.
    """
    dwells = dwells_s or [3.0, 1.0]
    table = ResultTable(
        "E6 extension: the dLTE handoff ladder "
        "(hard / X2-assisted / make-before-break)",
        ["arm", "dwell_s", "throughput_mbps", "worst_stall_s",
         "stall_fraction"])
    cells = [(arm, dwell, 1, 4)
             for arm in ("dlte-quic", "dlte-quic-x2", "dlte-quic-mbb")
             for dwell in dwells]
    results = parallel_map(_run_cell, cells,
                           costs=[dwell for _, dwell, _, _ in cells])
    for (arm, dwell, _, _), stats in zip(cells, results):
        table.add_row(arm=arm, dwell_s=dwell,
                      throughput_mbps=stats["throughput_bps"] / 1e6,
                      worst_stall_s=stats["worst_stall_s"],
                      stall_fraction=(stats["total_stall_s"]
                                      / stats["window_s"]))
    return table


def quic_0rtt_ablation(dwell_s: float = 5.0) -> ResultTable:
    """Ablation: reconnect-handshake cost — TCP+TLS (2 RTT + RTO
    detection) vs QUIC 0-RTT migration; each saved round trip shows up
    directly in the stall numbers.
    """
    table = ResultTable(
        "E6 ablation: reconnect handshake cost",
        ["arm", "worst_stall_s", "throughput_mbps"])
    cells = [(arm, dwell_s, 1, 4) for arm in ("dlte-tcp", "dlte-quic")]
    results = parallel_map(_run_cell, cells)
    for (arm, _, _, _), stats in zip(cells, results):
        table.add_row(arm=arm, worst_stall_s=stats["worst_stall_s"],
                      throughput_mbps=stats["throughput_bps"] / 1e6)
    return table
