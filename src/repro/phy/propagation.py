"""Path-loss models.

The range experiments (E3) hinge on how loss grows with distance and
carrier frequency. We implement the standard textbook/3GPP set:

* :class:`FreeSpace` — Friis, the optimistic lower bound.
* :class:`LogDistance` — generic exponent model with reference distance.
* :class:`TwoRayGround` — flat-earth two-ray, the classic long-distance
  rural approximation.
* :class:`OkumuraHata` — the empirical macro-cell model (150–1500 MHz),
  with open/suburban/urban corrections: this is the model that captures
  why 850 MHz covers a town and 2.4 GHz does not.
* :class:`Cost231Hata` — the 1500–2600+ MHz extension; we use it for the
  WiFi ISM and mid-band LTE frequencies at macro ranges.

All models return loss in dB for a distance in meters. Models clamp the
distance to a minimum of 1 m to stay defined at zero separation.

Two fast paths for sweep-style callers (E3's distance grids, the range
bisections, repeated link budgets at fixed geometry):

* :meth:`PropagationModel.path_loss_db_many` — numpy-vectorized loss
  over a whole distance grid; every model overrides the generic loop
  with closed-form array math, matching the scalar path to < 1e-9 dB
  (asserted by the microbenchmarks).
* :func:`cached_path_loss` — a memoized per-(model, freq) closure for
  scalar callers that revisit the same distances.

The batch TTI engine needs a third, stricter flavor:
:meth:`PropagationModel.path_loss_db_exact_many` replicates the scalar
formula term by term — same association order, libm ``log10`` at the
single distance-dependent transcendental — so its output is
*bit-identical* to ``path_loss_db`` per element, not merely within
1e-9 dB. (``path_loss_db_many`` is free to re-arrange algebra for
speed, e.g. the Hata anchor+slope form; the exact flavor is not.)
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Callable, Dict, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.phy.vmath import log10_exact

#: Friis constant 20*log10(4*pi/c) for d in km and f in MHz — 32.44 dB
#: (the exact value is 32.4478; some texts round to 32.45, this codebase
#: uses the truncated 32.44 convention everywhere).
FSPL_CONST_DB = 32.44


class PropagationModel(ABC):
    """Base: path loss in dB as a function of link geometry."""

    @abstractmethod
    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        """Median path loss in dB at ``distance_m`` and ``freq_mhz``."""

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        """Vectorized :meth:`path_loss_db` over a distance grid.

        The base implementation loops the scalar model; every concrete
        model overrides it with closed-form numpy. Scalar and vector
        paths agree to better than 1e-9 dB.
        """
        return np.array([self.path_loss_db(float(d), freq_mhz)
                         for d in np.asarray(distances_m, dtype=float)])

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        """Vectorized loss, *bit-identical* to :meth:`path_loss_db`.

        The base implementation loops the scalar model (trivially
        exact); concrete models override it with an array pipeline that
        keeps the scalar association order and routes ``log10`` through
        libm (see ``repro.phy.vmath``). Used by the batch TTI engine,
        whose equivalence contract is byte-identical tables.
        """
        return np.array([self.path_loss_db(float(d), freq_mhz)
                         for d in np.asarray(distances_m, dtype=float)])

    @staticmethod
    def _clamp_distance(distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"negative distance: {distance_m}")
        return max(distance_m, 1.0)

    @staticmethod
    def _clamp_distances(distances_m: Sequence[float]) -> np.ndarray:
        d = np.asarray(distances_m, dtype=float)
        if np.any(d < 0):
            raise ValueError(f"negative distance in grid: {d.min()}")
        return np.maximum(d, 1.0)


class FreeSpace(PropagationModel):
    """Friis free-space loss: 20log10(d) + 20log10(f) + 32.44 (d km, f MHz)."""

    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        d_km = self._clamp_distance(distance_m) / 1000.0
        return (20.0 * math.log10(d_km) + 20.0 * math.log10(freq_mhz)
                + FSPL_CONST_DB)

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        d_km = self._clamp_distances(distances_m) / 1000.0
        return (20.0 * np.log10(d_km) + 20.0 * math.log10(freq_mhz)
                + FSPL_CONST_DB)

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        d_km = self._clamp_distances(distances_m) / 1000.0
        return (20.0 * log10_exact(d_km) + 20.0 * math.log10(freq_mhz)
                + FSPL_CONST_DB)


class LogDistance(PropagationModel):
    """Log-distance model: FSPL at ``ref_m`` plus ``10 n log10(d/ref)``."""

    def __init__(self, exponent: float = 3.0, ref_m: float = 100.0) -> None:
        if exponent < 1.0:
            raise ValueError("path-loss exponent below free-space is unphysical")
        self.exponent = exponent
        self.ref_m = ref_m
        self._fspl = FreeSpace()

    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        d = self._clamp_distance(distance_m)
        base = self._fspl.path_loss_db(self.ref_m, freq_mhz)
        if d <= self.ref_m:
            return self._fspl.path_loss_db(d, freq_mhz)
        return base + 10.0 * self.exponent * math.log10(d / self.ref_m)

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        d = self._clamp_distances(distances_m)
        base = self._fspl.path_loss_db(self.ref_m, freq_mhz)
        far = base + 10.0 * self.exponent * np.log10(
            np.maximum(d, self.ref_m) / self.ref_m)
        near = self._fspl.path_loss_db_many(d, freq_mhz)
        return np.where(d <= self.ref_m, near, far)

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        d = self._clamp_distances(distances_m)
        base = self._fspl.path_loss_db(self.ref_m, freq_mhz)
        far = base + 10.0 * self.exponent * log10_exact(
            np.maximum(d, self.ref_m) / self.ref_m)
        near = self._fspl.path_loss_db_exact_many(d, freq_mhz)
        return np.where(d <= self.ref_m, near, far)


class TwoRayGround(PropagationModel):
    """Two-ray flat-earth model with a free-space near region.

    Beyond the crossover distance ``d_c = 4 pi h_t h_r / lambda`` the loss
    is ``40 log10(d) - 20 log10(h_t h_r)``, independent of frequency —
    which is why antenna *height*, not band, dominates very long links.
    """

    def __init__(self, tx_height_m: float = 30.0, rx_height_m: float = 1.5) -> None:
        if tx_height_m <= 0 or rx_height_m <= 0:
            raise ValueError("antenna heights must be positive")
        self.tx_height_m = tx_height_m
        self.rx_height_m = rx_height_m
        self._fspl = FreeSpace()

    def crossover_m(self, freq_mhz: float) -> float:
        """Distance beyond which the two-ray regime applies."""
        wavelength = 299.792458 / freq_mhz  # meters
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        d = self._clamp_distance(distance_m)
        if d < self.crossover_m(freq_mhz):
            return self._fspl.path_loss_db(d, freq_mhz)
        return (40.0 * math.log10(d)
                - 20.0 * math.log10(self.tx_height_m * self.rx_height_m))

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        d = self._clamp_distances(distances_m)
        near = self._fspl.path_loss_db_many(d, freq_mhz)
        far = (40.0 * np.log10(d)
               - 20.0 * math.log10(self.tx_height_m * self.rx_height_m))
        return np.where(d < self.crossover_m(freq_mhz), near, far)

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        d = self._clamp_distances(distances_m)
        near = self._fspl.path_loss_db_exact_many(d, freq_mhz)
        far = (40.0 * log10_exact(d)
               - 20.0 * math.log10(self.tx_height_m * self.rx_height_m))
        return np.where(d < self.crossover_m(freq_mhz), near, far)


class OkumuraHata(PropagationModel):
    """Okumura-Hata empirical macro model, valid 150–1500 MHz.

    ``environment`` selects the correction: ``"urban"`` (none),
    ``"suburban"``, or ``"open"`` (rural — the dLTE target setting).
    Frequencies above 1500 MHz should use :class:`Cost231Hata`; we allow a
    soft overrun to 2000 MHz for model-comparison plots but reject beyond.
    """

    ENVIRONMENTS = ("urban", "suburban", "open")

    def __init__(self, bs_height_m: float = 30.0, ue_height_m: float = 1.5,
                 environment: str = "open") -> None:
        if not 30.0 <= bs_height_m <= 200.0:
            raise ValueError("Hata valid for BS heights 30-200 m")
        if not 1.0 <= ue_height_m <= 10.0:
            raise ValueError("Hata valid for UE heights 1-10 m")
        if environment not in self.ENVIRONMENTS:
            raise ValueError(f"environment must be one of {self.ENVIRONMENTS}")
        self.bs_height_m = bs_height_m
        self.ue_height_m = ue_height_m
        self.environment = environment

    def _mobile_correction_db(self, freq_mhz: float) -> float:
        # Small/medium city correction (adequate for rural towns).
        return ((1.1 * math.log10(freq_mhz) - 0.7) * self.ue_height_m
                - (1.56 * math.log10(freq_mhz) - 0.8))

    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        if not 150.0 <= freq_mhz <= 2000.0:
            raise ValueError(
                f"Okumura-Hata valid 150-1500 MHz (soft to 2000); got {freq_mhz}")
        d_km = max(self._clamp_distance(distance_m) / 1000.0, 0.01)
        a_hm = self._mobile_correction_db(freq_mhz)
        loss = (69.55 + 26.16 * math.log10(freq_mhz)
                - 13.82 * math.log10(self.bs_height_m) - a_hm
                + (44.9 - 6.55 * math.log10(self.bs_height_m)) * math.log10(d_km))
        if self.environment == "suburban":
            loss -= 2.0 * (math.log10(freq_mhz / 28.0)) ** 2 + 5.4
        elif self.environment == "open":
            loss -= (4.78 * (math.log10(freq_mhz)) ** 2
                     - 18.33 * math.log10(freq_mhz) + 40.94)
        return loss

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        # one scalar evaluation pins every frequency/height/environment
        # term (and runs the validity checks); the grid only varies the
        # distance slope, so the whole sweep is a single log10 + axpy
        anchor_km = 1.0
        base = self.path_loss_db(anchor_km * 1000.0, freq_mhz)
        slope = 44.9 - 6.55 * math.log10(self.bs_height_m)
        d_km = np.maximum(self._clamp_distances(distances_m) / 1000.0, 0.01)
        return base + slope * np.log10(d_km / anchor_km)

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        if not 150.0 <= freq_mhz <= 2000.0:
            raise ValueError(
                f"Okumura-Hata valid 150-1500 MHz (soft to 2000); got {freq_mhz}")
        d_km = np.maximum(self._clamp_distances(distances_m) / 1000.0, 0.01)
        a_hm = self._mobile_correction_db(freq_mhz)
        # same association order as the scalar expression, distance term last
        prefix = (69.55 + 26.16 * math.log10(freq_mhz)
                  - 13.82 * math.log10(self.bs_height_m) - a_hm)
        slope = 44.9 - 6.55 * math.log10(self.bs_height_m)
        loss = prefix + slope * log10_exact(d_km)
        if self.environment == "suburban":
            loss = loss - (2.0 * (math.log10(freq_mhz / 28.0)) ** 2 + 5.4)
        elif self.environment == "open":
            loss = loss - (4.78 * (math.log10(freq_mhz)) ** 2
                           - 18.33 * math.log10(freq_mhz) + 40.94)
        return loss


class Cost231Hata(PropagationModel):
    """COST-231 Hata extension, valid 1500–2600 MHz (soft to 6000).

    Used for WiFi ISM frequencies at macro ranges in the E3 comparison.
    The ``environment`` applies the same open/suburban corrections as
    Okumura-Hata (COST-231 proper is urban; corrections follow common
    practice for rural comparisons).
    """

    def __init__(self, bs_height_m: float = 30.0, ue_height_m: float = 1.5,
                 environment: str = "open", metropolitan: bool = False) -> None:
        if not 30.0 <= bs_height_m <= 200.0:
            raise ValueError("COST-231 valid for BS heights 30-200 m")
        if environment not in OkumuraHata.ENVIRONMENTS:
            raise ValueError(f"environment must be one of {OkumuraHata.ENVIRONMENTS}")
        self.bs_height_m = bs_height_m
        self.ue_height_m = ue_height_m
        self.environment = environment
        self.metropolitan = metropolitan

    def path_loss_db(self, distance_m: float, freq_mhz: float) -> float:
        if not 1500.0 <= freq_mhz <= 6000.0:
            raise ValueError(
                f"COST-231 Hata valid 1500-2600 MHz (soft to 6000); got {freq_mhz}")
        d_km = max(self._clamp_distance(distance_m) / 1000.0, 0.01)
        a_hm = ((1.1 * math.log10(freq_mhz) - 0.7) * self.ue_height_m
                - (1.56 * math.log10(freq_mhz) - 0.8))
        c_m = 3.0 if self.metropolitan else 0.0
        loss = (46.3 + 33.9 * math.log10(freq_mhz)
                - 13.82 * math.log10(self.bs_height_m) - a_hm
                + (44.9 - 6.55 * math.log10(self.bs_height_m)) * math.log10(d_km)
                + c_m)
        if self.environment == "suburban":
            loss -= 2.0 * (math.log10(freq_mhz / 28.0)) ** 2 + 5.4
        elif self.environment == "open":
            loss -= (4.78 * (math.log10(freq_mhz)) ** 2
                     - 18.33 * math.log10(freq_mhz) + 40.94)
        return loss

    def path_loss_db_many(self, distances_m: Sequence[float],
                          freq_mhz: float) -> np.ndarray:
        anchor_km = 1.0
        base = self.path_loss_db(anchor_km * 1000.0, freq_mhz)
        slope = 44.9 - 6.55 * math.log10(self.bs_height_m)
        d_km = np.maximum(self._clamp_distances(distances_m) / 1000.0, 0.01)
        return base + slope * np.log10(d_km / anchor_km)

    def path_loss_db_exact_many(self, distances_m: Sequence[float],
                                freq_mhz: float) -> np.ndarray:
        if not 1500.0 <= freq_mhz <= 6000.0:
            raise ValueError(
                f"COST-231 Hata valid 1500-2600 MHz (soft to 6000); got {freq_mhz}")
        d_km = np.maximum(self._clamp_distances(distances_m) / 1000.0, 0.01)
        a_hm = ((1.1 * math.log10(freq_mhz) - 0.7) * self.ue_height_m
                - (1.56 * math.log10(freq_mhz) - 0.8))
        c_m = 3.0 if self.metropolitan else 0.0
        prefix = (46.3 + 33.9 * math.log10(freq_mhz)
                  - 13.82 * math.log10(self.bs_height_m) - a_hm)
        slope = 44.9 - 6.55 * math.log10(self.bs_height_m)
        loss = prefix + slope * log10_exact(d_km) + c_m
        if self.environment == "suburban":
            loss = loss - (2.0 * (math.log10(freq_mhz / 28.0)) ** 2 + 5.4)
        elif self.environment == "open":
            loss = loss - (4.78 * (math.log10(freq_mhz)) ** 2
                           - 18.33 * math.log10(freq_mhz) + 40.94)
        return loss


#: Memoized scalar closures: {model -> {(freq, maxsize) -> lru closure}}.
_LOSS_CLOSURES: "WeakKeyDictionary" = WeakKeyDictionary()


def cached_path_loss(model: PropagationModel, freq_mhz: float,
                     maxsize: int = 4096) -> Callable[[float], float]:
    """A memoized ``distance -> loss`` closure for a fixed (model, freq).

    Propagation models are pure functions of their constructor
    parameters, so repeated evaluations at the same distance — range
    bisections, stationary link budgets re-evaluated every TTI — are
    pure recomputation. The closure is cached per model instance (weakly,
    so models die normally) and per frequency; hits cost one dict lookup.
    """
    per_model: Dict = _LOSS_CLOSURES.setdefault(model, {})
    key = (freq_mhz, maxsize)
    closure = per_model.get(key)
    if closure is None:
        @lru_cache(maxsize=maxsize)
        def closure(distance_m: float) -> float:
            return model.path_loss_db(distance_m, freq_mhz)

        per_model[key] = closure
    return closure


def model_for_frequency(freq_mhz: float, bs_height_m: float = 30.0,
                        ue_height_m: float = 1.5,
                        environment: str = "open") -> PropagationModel:
    """Pick the Hata family member valid at ``freq_mhz``.

    Below 150 MHz or above 6 GHz falls back to log-distance with a rural
    exponent, so the catalogue is total over any band we might add.
    """
    if 150.0 <= freq_mhz <= 1500.0:
        return OkumuraHata(bs_height_m, ue_height_m, environment)
    if 1500.0 < freq_mhz <= 6000.0:
        return Cost231Hata(bs_height_m, ue_height_m, environment)
    return LogDistance(exponent=3.2, ref_m=100.0)
