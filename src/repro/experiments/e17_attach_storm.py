"""E17 (extension) — overload: the attach storm, with protection armed.

E7 measures attach *latency* while every queue is unbounded — overload
shows up as patience, never as failure. E17 asks the operational
question instead: when a stadium-scale flash crowd storms the attach
procedure, **who actually gets on the network**, and how gracefully does
each architecture shed what it cannot serve?

Both arms run the full packet-level builds (so chaos scenarios and the
invariant layer compose — a storm *during* a flapping backhaul is one
flag away), with bounded control queues and T3346-style admission
control (:mod:`repro.epc.overload`) on the bottleneck agents:

* **Centralized LTE** — every AttachRequest from every site funnels into
  one serial MME; under storm its admission control refuses the excess
  with ``AttachReject(cause=congestion, backoff_s=T)`` and the crowd
  retries in decaying, jittered waves.
* **dLTE (federated)** — each site's stub absorbs only its own cell's
  share of the storm; the same protection is installed but rarely fires.

Reported per (architecture x storm intensity): attach-success rate,
time-to-attach P50/P99/P99.9 (streaming P² quantiles — demand-to-service
time, including every reject, backoff, and retry), congestion rejects,
total messages shed, and the deepest control queue. The graceful-
degradation claim (§4.1) is the *shape*: stubs sustain at least the
centralized success rate at every intensity, and the gap widens as the
storm grows.

With ``overload=False`` no policy is installed and both arms degrade the
seed way — unbounded queues, timeout-driven retries, no congestion
signal — which is the honest baseline the protection layer is measured
against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.network import CentralizedLTENetwork, DLTENetwork
from repro.epc.overload import OverloadPolicy
from repro.epc.ue import UeState
from repro.faults import FaultInjector, compose_scenario, prepare_scenario
from repro.invariants.network import iter_control_agents
from repro.metrics.tables import ResultTable
from repro.runner import parallel_map
from repro.workloads.topology import RuralTown
from repro.workloads.traffic import FlashCrowdAttachSource

#: every UE demands the network inside this window (stadium lets out)
STORM_WINDOW_S = 0.5

#: supervised-attach policy for storm UEs: few, fast attempts — a
#: handset gives up long before the eighth try at a dead network
RETRY_KWARGS = dict(max_attempts=4, timeout_s=2.0, base_backoff_s=0.5,
                    max_backoff_s=4.0, jitter_frac=0.5)

#: bounded-queue + admission policy installed on the bottleneck agents
#: (the MME / each stub): Detach and Paging outrank a flood of fresh
#: AttachRequests, and refused attaches carry a 2 s T3346 backoff
DEFAULT_POLICY = dict(queue_limit=24, shed="priority", admission_limit=16,
                      congestion_backoff_s=2.0)

#: time-to-attach quantiles (P50/P95/P99/P99.9 via streaming P²)
QUANTILES = (0.5, 0.95, 0.99, 0.999)


def _bottleneck_agents(net) -> List:
    """The serial processors an attach storm concentrates on."""
    aps = getattr(net, "aps", None)
    if aps:
        return [aps[ap_id].stub for ap_id in sorted(aps)]
    return [net.epc.mme]


def _settle_dlte(net: DLTENetwork) -> None:
    """License + peer + monitors — the pre-storm control phase."""
    granted = {"n": 0}

    def on_granted(_ok: bool) -> None:
        granted["n"] += 1
        if granted["n"] == len(net.aps):
            for ap in net.aps.values():
                ap.discover_and_peer(net.aps)

    for ap in net.aps.values():
        ap.register_spectrum(on_granted)
    net.sim.run(until=net.sim.now + 2.0)
    for ap in net.aps.values():
        ap.start_peer_monitor(heartbeat_s=1.0)


def _run_cell(task: Tuple) -> Dict[str, float]:
    """One (architecture, intensity) cell; picklable for parallel_map."""
    (arch, intensity, n_aps, ue_per_ap, seed, scenario, invariants,
     overload, chaos_at_s, horizon_s) = task
    n_ues = n_aps * ue_per_ap * intensity
    town = RuralTown(radius_m=2500.0, n_ues=n_ues, n_aps=n_aps, seed=seed)
    if arch == "dlte":
        net = DLTENetwork.build(town, seed=seed)
    else:
        net = CentralizedLTENetwork.build(town, seed=seed)
    sim = net.sim
    if scenario:
        prepare_scenario(scenario, net)
    checker = None
    if invariants:
        from repro.invariants import watch_network
        checker = watch_network(net)
    if overload:
        policy = OverloadPolicy(**DEFAULT_POLICY)
        for agent in _bottleneck_agents(net):
            agent.configure_overload(policy)
    if arch == "dlte":
        _settle_dlte(net)

    t0 = sim.now
    ues = [net.ues[name] for name in sorted(net.ues)]
    storm = FlashCrowdAttachSource(sim, ues, window_s=STORM_WINDOW_S,
                                   name="flash-crowd",
                                   retry_kwargs=dict(RETRY_KWARGS))
    storm.start()
    until = t0 + horizon_s
    if scenario:
        injector = FaultInjector(sim)
        plan = compose_scenario(scenario, net, injector, t0 + chaos_at_s)
        until = max(until, plan.end_s + 10.0)
    sim.run(until=until)
    if checker is not None:
        checker.verify()

    # harvest: who got on, how long demand-to-service took, what was shed
    attached = [ue for ue in ues if ue.state is UeState.ATTACHED]
    latency = sim.metrics.histogram("nas.time_to_attach_s",
                                    quantiles=QUANTILES)
    for ue in attached:
        if ue.attach_completed_at is not None:
            latency.observe(ue.attach_completed_at
                            - storm.demand_at[ue.ue_id])
    agents = iter_control_agents(net)
    empty = latency.count == 0
    return {
        "storm_ues": n_ues,
        "attach_success": len(attached) / max(1, len(ues)),
        "p50_s": 0.0 if empty else latency.quantile(0.5),
        "p99_s": 0.0 if empty else latency.quantile(0.99),
        "p999_s": 0.0 if empty else latency.quantile(0.999),
        "congestion_rejects": sum(
            a.shed_by_cause.get("congestion", 0) for a in agents),
        "shed_total": sum(a.shed for a in agents),
        "peak_queue": max(a.peak_queue_depth for a in agents),
    }


_ARCHITECTURES = (("Centralized LTE", "cent"), ("dLTE stubs", "dlte"))


def run(intensities: Optional[Sequence[int]] = None, n_aps: int = 3,
        ue_per_ap: int = 8, seed: int = 7, scenario: str = "",
        invariants: bool = False, overload: bool = True,
        chaos_at_s: float = 1.0, horizon_s: float = 15.0) -> ResultTable:
    """Attach-success and shed accounting across storm intensities.

    ``intensities`` scales the crowd: each cell storms
    ``n_aps * ue_per_ap * intensity`` UEs inside ``STORM_WINDOW_S``.
    ``scenario`` overlays a named chaos storm (``repro.faults``) at
    ``chaos_at_s`` after the crowd starts; ``invariants`` arms the full
    conservation-law checker per cell and raises on any breach;
    ``overload=False`` removes all queue bounds (the seed's
    infinite-patience baseline).
    """
    if intensities is None:
        intensities = (1, 8, 64)
    cells = [(arch_key, intensity, n_aps, ue_per_ap, seed, scenario,
              invariants, overload, chaos_at_s, horizon_s)
             for intensity in intensities
             for _label, arch_key in _ARCHITECTURES]
    results = parallel_map(_run_cell, cells,
                           costs=[cell[1] for cell in cells])

    protection = "protected" if overload else "unprotected (seed baseline)"
    suffix = f" under {scenario!r}" if scenario else ""
    table = ResultTable(
        f"E17: attach storm{suffix} — graceful degradation, {protection}",
        ["arch", "storm_ues", "attach_success", "p50_s", "p99_s", "p999_s",
         "congestion_rejects", "shed_total", "peak_queue"])
    labels = [label for intensity in intensities
              for label, _key in _ARCHITECTURES]
    for label, row in zip(labels, results):
        table.add_row(arch=label, **row)
    return table
