"""E13 (extension) — what dLTE buys by *not* managing mobility: no paging.

§4.1 pares the stub "down to only those [functions] directly required by
the client" — tracking areas and paging are among the discarded ones.
The cost of keeping them, measured: in carrier LTE an idle UE's location
is only known to tracking-area granularity, so the first downlink packet
triggers a paging broadcast to *every* site, then a service request, all
across backhaul. In dLTE the AP that holds the client's address *is* the
AP it camps on; waking is a local RRC exchange.

Reported vs fleet size: wake-up (first-packet-from-idle) latency and the
signaling fan-out per wake.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.enodeb.relay import EnbControlRelay
from repro.epc.agents import ControlChannel
from repro.epc.centralized import CentralizedEpc
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState, UserEquipment
from repro.metrics.tables import ResultTable
from repro.net.addressing import AddressPool
from repro.simcore.simulator import Simulator

AIR_DELAY_S = 0.005
BACKHAUL_DELAY_S = 0.030
#: DRX cycle: mean delay before an idle radio hears its page / wake event
DRX_WAKE_S = 0.016


def carrier_wakeup(n_enbs: int, seed: int = 1) -> Dict[str, float]:
    """Idle wake-up through the MME's paging machinery."""
    sim = Simulator(seed)
    epc = CentralizedEpc(sim, AddressPool("10.0.0.0/16"))
    enbs: List[EnbControlRelay] = []
    for i in range(n_enbs):
        enb = EnbControlRelay(sim, f"enb{i}")
        channel = epc.connect_enb(enb, backhaul_delay_s=BACKHAUL_DELAY_S)
        enb.connect_core(channel)
        enbs.append(enb)
    profile = make_profile("001010000099001")
    epc.provision(profile)
    ue = UserEquipment(sim, profile)
    air = ControlChannel(sim, ue, enbs[0], AIR_DELAY_S, "air")
    ue.connect_air(air)
    enbs[0].attach_ue(ue.ue_id, air)
    ue.start_attach()
    sim.run(until=5.0)
    assert ue.state is UeState.ATTACHED

    ue.go_idle()
    sim.run(until=6.0)
    # downlink data arrives at the P-GW for the idle UE -> page the TA
    t0 = sim.now
    sim.schedule(DRX_WAKE_S, lambda: None)  # DRX alignment
    pages = epc.mme.page(ue.ue_id)
    sim.run(until=t0 + 10.0)
    assert ue.ecm_connected
    return {
        "wake_latency_s": ue.service_resumed_at - t0 + DRX_WAKE_S,
        "paging_messages": float(pages),
        "control_messages": float(pages + 2),  # + SR and accept
    }


def dlte_wakeup() -> Dict[str, float]:
    """dLTE wake-up: no tracking area, no paging — a local RRC exchange.

    The serving AP owns the client's address, so the first downlink
    packet is already at the right site; cost is the DRX wake plus one
    air round trip to re-establish the RRC connection with the co-located
    stub.
    """
    return {
        "wake_latency_s": DRX_WAKE_S + 2 * AIR_DELAY_S + 1e-3,
        "paging_messages": 0.0,
        "control_messages": 2.0,  # RRC request/setup with the local stub
    }


def run(enb_counts: Optional[List[int]] = None, seed: int = 1) -> ResultTable:
    """Wake-up latency and signaling fan-out vs fleet size."""
    counts = enb_counts or [1, 8, 32, 128]
    table = ResultTable(
        "E13: waking an idle client — paging fan-out vs local breakout",
        ["architecture", "n_sites", "wake_latency_ms", "paging_messages",
         "control_messages"])
    for n in counts:
        stats = carrier_wakeup(n, seed)
        table.add_row(architecture="carrier (TA paging)", n_sites=n,
                      wake_latency_ms=stats["wake_latency_s"] * 1e3,
                      paging_messages=stats["paging_messages"],
                      control_messages=stats["control_messages"])
    stats = dlte_wakeup()
    table.add_row(architecture="dLTE (no paging)", n_sites="any",
                  wake_latency_ms=stats["wake_latency_s"] * 1e3,
                  paging_messages=stats["paging_messages"],
                  control_messages=stats["control_messages"])
    return table
