"""Unit tests for X2, fair sharing, cooperative mode, ICIC, and the mesh."""

import pytest

from repro.coordination import (
    BackhaulMesh,
    CooperativeCluster,
    DlteModeInfo,
    FairSharingCoordinator,
    LoadInformation,
    X2Endpoint,
    reuse_partition,
)
from repro.coordination.fair_sharing import compute_weighted_partition
from repro.coordination.icic import co_channel_cells
from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo import Point
from repro.phy import LinkBudget, OkumuraHata, Radio, get_band
from repro.phy.resource_grid import ResourceGrid
from repro.simcore import Simulator


# -- X2 ------------------------------------------------------------------------

def _mesh_x2(sim, n, delay=0.02):
    eps = [X2Endpoint(sim, f"ap{i}") for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            eps[i].connect_peer(eps[j], one_way_delay_s=delay)
    return eps


def test_x2_peer_wiring_symmetric():
    sim = Simulator(0)
    a, b = _mesh_x2(sim, 2)
    assert a.peer_ids == {"ap1"} and b.peer_ids == {"ap0"}
    a.disconnect_peer("ap1")
    assert a.peer_ids == set() and b.peer_ids == set()


def test_x2_send_and_receive():
    sim = Simulator(0)
    a, b = _mesh_x2(sim, 2, delay=0.03)
    got = []
    b.add_handler(lambda frm, msg: got.append((sim.now, frm, msg)))
    a.send("ap1", LoadInformation(sender_ap="ap0", prb_utilization=0.5))
    sim.run()
    assert len(got) == 1
    t, frm, msg = got[0]
    assert frm == "ap0" and msg.prb_utilization == 0.5
    assert t >= 0.03


def test_x2_broadcast_counts_bytes():
    sim = Simulator(0)
    eps = _mesh_x2(sim, 4)
    eps[0].broadcast(DlteModeInfo(sender_ap="ap0", mode="cooperative"))
    sim.run()
    assert eps[0].messages_sent == 3
    assert eps[0].bytes_sent == 3 * 120


def test_x2_send_to_unknown_peer_raises():
    sim = Simulator(0)
    (a,) = _mesh_x2(sim, 1)
    with pytest.raises(KeyError):
        a.send("ghost", LoadInformation(sender_ap="ap0"))


# -- weighted partition (pure function) ----------------------------------------------

def test_partition_equal_weights():
    p = compute_weighted_partition(50, {"a": 1, "b": 1, "c": 1})
    sizes = sorted(len(s) for s in p.values())
    assert sizes == [16, 17, 17]
    assert frozenset().union(*p.values()) == frozenset(range(50))


def test_partition_weighted():
    p = compute_weighted_partition(100, {"busy": 3.0, "idle": 1.0})
    assert len(p["busy"]) == 75 and len(p["idle"]) == 25


def test_partition_deterministic_regardless_of_dict_order():
    p1 = compute_weighted_partition(50, {"a": 1, "b": 2})
    p2 = compute_weighted_partition(50, {"b": 2, "a": 1})
    assert p1 == p2


def test_partition_slices_contiguous_and_disjoint():
    p = compute_weighted_partition(30, {"x": 1, "y": 1, "z": 2})
    all_prbs = sorted(i for s in p.values() for i in s)
    assert all_prbs == list(range(30))  # disjoint + complete
    for s in p.values():
        lst = sorted(s)
        assert lst == list(range(lst[0], lst[0] + len(lst)))  # contiguous


def test_partition_validates():
    with pytest.raises(ValueError):
        compute_weighted_partition(10, {})
    with pytest.raises(ValueError):
        compute_weighted_partition(10, {"a": 0.0})
    with pytest.raises(ValueError):
        compute_weighted_partition(-1, {"a": 1.0})


# -- fair sharing protocol --------------------------------------------------------------

def _fair_cluster(sim, n, delay=0.02, weights=None):
    eps = _mesh_x2(sim, n, delay)
    coords = [FairSharingCoordinator(ep, ResourceGrid(10e6),
                                     demand_weight=(weights or {}).get(f"ap{i}", 1.0))
              for i, ep in enumerate(eps)]
    return eps, coords


def test_fair_sharing_converges_to_disjoint_cover():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 4)
    for c in coords:
        c.announce()
    sim.run(until=1)
    union = set()
    total = 0
    for c in coords:
        union |= c.my_prbs
        total += len(c.my_prbs)
    assert union == set(range(50)) and total == 50
    assert all(11 <= len(c.my_prbs) <= 13 for c in coords)


def test_fair_sharing_converges_in_one_latency():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 3, delay=0.05)
    for c in coords:
        c.announce()
    sim.run(until=0.2)
    # all claims arrive after one one-way delay (+epsilon processing)
    assert all(c.partitions_installed >= 1 for c in coords)
    assert sim.now <= 0.2


def test_fair_sharing_demand_weighted_ablation():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 2, weights={"ap0": 3.0, "ap1": 1.0})
    for c in coords:
        c.announce()
    sim.run(until=1)
    assert len(coords[0].my_prbs) == pytest.approx(37, abs=1)
    assert len(coords[1].my_prbs) == pytest.approx(13, abs=1)


def test_fair_sharing_reconverges_on_new_member():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 2)
    for c in coords:
        c.announce()
    sim.run(until=1)
    assert all(len(c.my_prbs) == 25 for c in coords)
    # a third AP joins the domain
    new_ep = X2Endpoint(sim, "ap2")
    for ep in eps:
        new_ep.connect_peer(ep, one_way_delay_s=0.02)
    new_coord = FairSharingCoordinator(new_ep, ResourceGrid(10e6))
    new_coord.announce()
    sim.run(until=2)
    all_coords = coords + [new_coord]
    union = set().union(*(c.my_prbs for c in all_coords))
    assert union == set(range(50))
    assert sum(len(c.my_prbs) for c in all_coords) == 50
    assert all(16 <= len(c.my_prbs) <= 17 for c in all_coords)


def test_fair_sharing_weight_update_triggers_reconvergence():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 2)
    for c in coords:
        c.announce()
    sim.run(until=1)
    coords[0].set_demand_weight(4.0)
    sim.run(until=2)
    assert len(coords[0].my_prbs) == 40
    assert len(coords[1].my_prbs) == 10


def test_fair_sharing_rejects_bad_weight():
    sim = Simulator(1)
    eps, coords = _fair_cluster(sim, 2)
    with pytest.raises(ValueError):
        coords[0].set_demand_weight(0.0)


# -- ICIC ------------------------------------------------------------------------------------

def test_reuse1_everyone_shares_everything():
    p = reuse_partition(["a", "b", "c"], 50, reuse_factor=1)
    assert all(s == frozenset(range(50)) for s in p.values())
    overlaps = co_channel_cells(p)
    assert overlaps["a"] == ["b", "c"] or set(overlaps["a"]) == {"b", "c"}


def test_reuse3_disjoint_thirds():
    p = reuse_partition(["a", "b", "c"], 30, reuse_factor=3)
    union = set().union(*p.values())
    assert len(union) == 30
    assert all(len(s) == 10 for s in p.values())
    assert all(not v for v in co_channel_cells(p).values())


def test_reuse3_colors_repeat_cyclically():
    p = reuse_partition(["a", "b", "c", "d"], 30, reuse_factor=3)
    assert p["a"] == p["d"]  # 4th cell reuses color 0
    assert co_channel_cells(p)["a"] == ["d"]


def test_reuse_validates():
    with pytest.raises(ValueError):
        reuse_partition([], 30, 3)
    with pytest.raises(ValueError):
        reuse_partition(["a"], 30, 0)
    with pytest.raises(ValueError):
        reuse_partition(["a", "a"], 30, 3)


# -- cooperative cluster --------------------------------------------------------------------------

def _make_cell(name, x, band=None):
    band = band or get_band("lte5")
    lb = LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                    band.bandwidth_hz)
    return Cell(name, band, Point(x, 0), lb)


def _ue_ctx(ue_id, x):
    return UeRadioContext(ue_id=ue_id,
                          radio=Radio(Point(x, 0), tx_power_dbm=23))


def test_cooperative_best_ap_assignment():
    """UEs attached to the wrong AP get moved to the strongest one."""
    cluster = CooperativeCluster()
    west, east = _make_cell("west", 0), _make_cell("east", 10_000)
    cluster.join(west)
    cluster.join(east)
    # both UEs start on west, but one lives next to east
    west.add_ue(_ue_ctx("near-west", 500))
    west.add_ue(_ue_ctx("near-east", 9_500))
    cluster.optimize()
    assert "near-west" in west.attached_ues
    assert "near-east" in east.attached_ues
    assert cluster.reassignments == 1


def test_cooperative_demand_weighted_fusion():
    """An idle AP's spectrum flows to its loaded neighbour."""
    cluster = CooperativeCluster()
    busy, idle = _make_cell("busy", 0), _make_cell("idle", 10_000)
    cluster.join(busy)
    cluster.join(idle)
    for i in range(8):
        busy.add_ue(_ue_ctx(f"u{i}", 300 + i * 50))
    cluster.optimize()
    assert len(busy.allowed_prbs) > 3 * len(idle.allowed_prbs)
    assert not (busy.allowed_prbs & idle.allowed_prbs)  # still disjoint


def test_cooperative_handoff_moves_context():
    cluster = CooperativeCluster()
    a, b = _make_cell("a", 0), _make_cell("b", 5000)
    cluster.join(a)
    cluster.join(b)
    a.add_ue(_ue_ctx("mob", 2500))
    cluster.handoff("mob", "b")
    assert "mob" in b.attached_ues and "mob" not in a.attached_ues
    cluster.handoff("mob", "b")  # idempotent
    with pytest.raises(KeyError):
        cluster.handoff("mob", "ghost-cell")
    with pytest.raises(KeyError):
        cluster.handoff("ghost-ue", "a")


def test_cooperative_leave_restores_full_grid():
    cluster = CooperativeCluster()
    a, b = _make_cell("a", 0), _make_cell("b", 5000)
    cluster.join(a)
    cluster.join(b)
    cluster.optimize()
    assert len(a.allowed_prbs) < a.grid.n_prbs
    cluster.leave("a")
    assert a.allowed_prbs == a.grid.all_prbs
    assert cluster.members == ["b"]


def test_cooperative_installs_qos_scheduler():
    from repro.mac.schedulers import QosAwareScheduler
    cluster = CooperativeCluster()
    cell = _make_cell("a", 0)
    cluster.join(cell)
    assert isinstance(cell.scheduler, QosAwareScheduler)


def test_cooperative_empty_cluster_rejected():
    with pytest.raises(RuntimeError):
        CooperativeCluster().optimize()


# -- mesh backhaul (E11) --------------------------------------------------------------------------

def _line_mesh():
    mesh = BackhaulMesh()
    mesh.add_ap("a", backhaul_bps=10e6)
    mesh.add_ap("b", backhaul_bps=0)       # relies on neighbours
    mesh.add_ap("c", backhaul_bps=5e6)
    mesh.connect("a", "b", radio_bps=20e6)
    mesh.connect("b", "c", radio_bps=20e6)
    return mesh


def test_mesh_direct_backhaul_preferred():
    mesh = _line_mesh()
    path, capacity = mesh.route_to_internet("a")
    assert path == ["a"] and capacity == 10e6


def test_mesh_relays_backhaul_less_ap():
    mesh = _line_mesh()
    path, capacity = mesh.route_to_internet("b")
    assert path == ["b", "a"]        # widest gateway wins (10M > 5M)
    assert capacity == 10e6


def test_mesh_failover_to_surviving_gateway():
    """§7: redundancy when the backhaul link goes down."""
    mesh = _line_mesh()
    mesh.fail_backhaul("a")
    path, capacity = mesh.route_to_internet("a")
    assert path == ["a", "b", "c"] and capacity == 5e6
    assert mesh.reachable_fraction() == 1.0
    mesh.fail_backhaul("c")
    assert mesh.route_to_internet("b") is None
    assert mesh.reachable_fraction() == 0.0
    mesh.restore_backhaul("a")
    assert mesh.reachable_fraction() == 1.0


def test_mesh_total_capacity_tracks_failures():
    mesh = _line_mesh()
    assert mesh.total_capacity_bps() == 15e6
    mesh.fail_backhaul("c")
    assert mesh.total_capacity_bps() == 10e6


def test_mesh_validates():
    mesh = BackhaulMesh()
    with pytest.raises(ValueError):
        mesh.add_ap("x", backhaul_bps=-1)
    mesh.add_ap("x")
    with pytest.raises(KeyError):
        mesh.connect("x", "ghost", 1e6)
    mesh.add_ap("y")
    with pytest.raises(ValueError):
        mesh.connect("x", "y", 0)
    with pytest.raises(KeyError):
        mesh.fail_backhaul("ghost")
