"""The centralized carrier EPC, assembled.

One HSS + MME + S-GW + P-GW wired with datacenter-internal channels
(S6a, S11, S5), exposing :meth:`connect_enb` for eNodeBs at the far end
of real backhaul. This is the baseline of Fig. 1's left side and the
"closed core" of Table 1: subscribers must be provisioned in *this*
HSS, and all sessions anchor at *this* P-GW.
"""

from __future__ import annotations

from typing import Dict

from repro.epc.agents import ControlAgent, ControlChannel
from repro.epc.hss import Hss
from repro.epc.mme import Mme
from repro.epc.pgw import Pgw
from repro.epc.sgw import Sgw
from repro.epc.subscriber import SubscriberProfile
from repro.net.addressing import AddressPool
from repro.simcore.simulator import Simulator


class CentralizedEpc:
    """A complete carrier core in one place.

    Args:
        sim: event kernel.
        pool: the carrier's UE address pool (P-GW allocates from it).
        internal_delay_s: one-way latency between core components
            (same-datacenter, default 0.1 ms).
        mme_service_time_s / hss_service_time_s: per-message processing
            costs; these set the core's saturation point in E7.
    """

    def __init__(self, sim: Simulator, pool: AddressPool,
                 name: str = "epc",
                 internal_delay_s: float = 0.1e-3,
                 mme_service_time_s: float = 1e-3,
                 hss_service_time_s: float = 1e-3) -> None:
        self.sim = sim
        self.name = name
        self.hss = Hss(sim, f"{name}-hss", service_time_s=hss_service_time_s)
        self.mme = Mme(sim, f"{name}-mme", service_time_s=mme_service_time_s)
        self.sgw = Sgw(sim, f"{name}-sgw")
        self.pgw = Pgw(sim, pool, f"{name}-pgw")

        s6a = ControlChannel(sim, self.mme, self.hss, internal_delay_s, "s6a")
        self.mme.connect_hss(s6a)
        self.hss.connect_mme(s6a)
        s11 = ControlChannel(sim, self.mme, self.sgw, internal_delay_s, "s11")
        self.mme.connect_sgw(s11)
        self.sgw.connect_mme(s11)
        s5 = ControlChannel(sim, self.sgw, self.pgw, internal_delay_s, "s5")
        self.sgw.connect_pgw(s5)
        self.pgw.connect_sgw(s5)

        self._s1_channels: Dict[str, ControlChannel] = {}

    def provision(self, profile: SubscriberProfile) -> None:
        """Add a subscriber to the carrier's HSS."""
        self.hss.db.provision(profile)

    def connect_enb(self, enb_agent: ControlAgent,
                    backhaul_delay_s: float) -> ControlChannel:
        """Wire an eNodeB's S1 interface over ``backhaul_delay_s`` backhaul.

        Returns the channel; the eNodeB side must also register it.
        """
        channel = ControlChannel(self.sim, enb_agent, self.mme,
                                 backhaul_delay_s,
                                 name=f"s1:{enb_agent.name}")
        self.mme.connect_enb(enb_agent.name, channel)
        self._s1_channels[enb_agent.name] = channel
        return channel

    @property
    def control_bytes_on_backhaul(self) -> int:
        """Total S1 bytes that crossed eNodeB backhaul links."""
        return sum(ch.bytes for ch in self._s1_channels.values())

    @property
    def attached_ues(self) -> int:
        """UEs currently in ATTACHED state at the MME."""
        from repro.epc.mme import UeContextState

        return sum(1 for ctx in self.mme.contexts.values()
                   if ctx.state is UeContextState.ATTACHED)
