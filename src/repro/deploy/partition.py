"""Shard plans: which cell sites (and their UEs) run in which shard.

Sits in ``deploy`` because sharding is a deployment-shaped decision:
the partition mirrors how a city operator would regionalize sites, and
the balance numbers here are what the per-shard telemetry attributes
barrier-wait imbalance to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geo.partition import stripe_partition
from repro.geo.points import Point

__all__ = ["ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """An immutable cell-site → shard assignment.

    ``assignment[i]`` is the shard of cell site ``i``; UEs follow the
    cell they camp on, so the plan also partitions the user population.
    """

    n_shards: int
    assignment: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        for shard in self.assignment:
            if not 0 <= shard < self.n_shards:
                raise ValueError(
                    f"assignment references shard {shard} outside "
                    f"0..{self.n_shards - 1}")

    @classmethod
    def stripes(cls, positions: Sequence[Point], n_shards: int) -> "ShardPlan":
        """Balanced contiguous stripes over site positions."""
        return cls(n_shards=n_shards,
                   assignment=tuple(stripe_partition(positions, n_shards)))

    def shard_of(self, site: int) -> int:
        return self.assignment[site]

    def sites_of(self, shard: int) -> List[int]:
        """Site indices assigned to ``shard``, in global site order."""
        return [i for i, s in enumerate(self.assignment) if s == shard]

    @property
    def counts(self) -> List[int]:
        """Sites per shard (the static balance of the plan)."""
        counts = [0] * self.n_shards
        for shard in self.assignment:
            counts[shard] += 1
        return counts

    @property
    def imbalance(self) -> float:
        """max/mean site count — 1.0 is perfectly balanced."""
        counts = self.counts
        mean = sum(counts) / len(counts)
        return (max(counts) / mean) if mean else 1.0
