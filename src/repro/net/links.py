"""Point-to-point links with rate, delay, and drop-tail queues.

A link is the unit of backhaul modelling: the AP's Internet uplink, the
S1 path to a carrier EPC, the X2 path between peers. Serialization time
(size/rate) plus propagation delay plus queueing; a finite queue drops
from the tail, which is where "backhaul constrained" (E9) bites.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.simcore.simulator import Simulator


class Link:
    """Unidirectional link delivering packets to a receive callback.

    Args:
        sim: the event kernel.
        rate_bps: serialization rate; ``float('inf')`` for ideal links.
        delay_s: propagation delay.
        queue_packets: drop-tail queue capacity (packets awaiting
            serialization); the packet in service is not counted.
        name: for hop recording and diagnostics.
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 queue_packets: int = 100, name: str = "link") -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive (use inf for ideal)")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.name = name
        self.receiver: Optional[Callable[[Packet], None]] = None
        self._queue: list = []
        self._busy = False
        # counters
        self.delivered = 0
        self.dropped = 0
        self.bytes_sent = 0

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Attach the downstream receive function."""
        self.receiver = receiver

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (excludes the one being serialized)."""
        return len(self._queue)

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet; returns False (and counts a drop) if full."""
        if self.receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        if self._busy:
            if len(self._queue) >= self.queue_packets:
                self.dropped += 1
                return False
            self._queue.append(packet)
            return True
        self._serialize(packet)
        return True

    def _serialize(self, packet: Packet) -> None:
        self._busy = True
        tx_time = (packet.size_bytes * 8.0 / self.rate_bps
                   if self.rate_bps != float("inf") else 0.0)
        self.sim.schedule(tx_time, self._transmitted, packet)

    def _transmitted(self, packet: Packet) -> None:
        self.bytes_sent += packet.size_bytes
        self.sim.schedule(self.delay_s, self._deliver, packet)
        if self._queue:
            self._serialize(self._queue.pop(0))
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        self.delivered += 1
        self.receiver(packet)

    def __repr__(self) -> str:
        rate = ("inf" if self.rate_bps == float("inf")
                else f"{self.rate_bps/1e6:g}Mbps")
        return (f"<Link {self.name} {rate} {self.delay_s*1e3:g}ms "
                f"q={self.queue_depth}/{self.queue_packets}>")
