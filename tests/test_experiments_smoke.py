"""Smoke tests: every (cheap) experiment produces well-formed tables.

The benchmarks assert the *shapes*; these tests assert the *plumbing*
stays runnable with small parameters, so refactors that break an
experiment fail fast in the unit suite instead of the slow bench run.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    e3_range,
    e4_weak_signal,
    e5_coordination,
    e7_core_scaling,
    e8_hidden_terminal,
    e9_x2_bandwidth,
    e10_registries,
    e11_mesh_backhaul,
    e12_deployment_cost,
    e13_idle_paging,
    e14_nr_upgrade,
    e16_resilience,
    e17_attach_storm,
    e18_sustained_overload,
    e19_city,
    t1_design_space,
)
from repro.metrics.tables import ResultTable


def test_registry_covers_all_ids():
    assert set(ALL_EXPERIMENTS) == {
        "T1", "F1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
        "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run")
        assert module.__doc__


def _check(table, min_rows=1):
    assert isinstance(table, ResultTable)
    assert len(table) >= min_rows
    assert table.render()


def test_t1_smoke():
    quadrants, matrix = t1_design_space.run()
    _check(quadrants, 2)
    _check(matrix, 4)


def test_e3_smoke():
    _check(e3_range.run(distances_m=[500, 5000]), 6)


def test_e4_smoke():
    _check(e4_weak_signal.run(sinrs_db=[-5, 5]), 2)
    _check(e4_weak_signal.harq_retx_ablation(), 2)


def test_e5_smoke():
    _check(e5_coordination.run(n_aps=2, ue_per_ap=2, seed=1), 5)


def test_e7_smoke():
    _check(e7_core_scaling.run(ap_counts=[1, 2], ue_per_ap=2), 4)


def test_e8_smoke():
    _check(e8_hidden_terminal.run(ap_counts=[3]), 1)
    _check(e8_hidden_terminal.sensing_ablation(
        sense_ranges_m=[2000.0], n_aps=4), 1)


def test_e9_smoke():
    _check(e9_x2_bandwidth.run(peer_counts=[2], duration_s=5.0), 1)


def test_e10_smoke():
    _check(e10_registries.run(n_aps=5), 3)


def test_e11_smoke():
    _check(e11_mesh_backhaul.run(n_aps=3), 3)


def test_e12_smoke():
    _check(e12_deployment_cost.run(), 3)
    _check(e12_deployment_cost.bom_table(), 4)


def test_e13_smoke():
    _check(e13_idle_paging.run(enb_counts=[1, 2]), 3)


def test_e14_smoke():
    _check(e14_nr_upgrade.run(distances_m=[500, 8000]), 4)
    _check(e14_nr_upgrade.latency_ladder(), 5)


def test_e16_smoke():
    timeline, summary = e16_resilience.run(
        n_ues=4, fail_at_s=3.0, outage_s=6.0, horizon_s=15.0)
    _check(timeline, 2 * 15)
    _check(summary, 2)


def test_e17_smoke():
    table = e17_attach_storm.run(intensities=(1, 4), n_aps=2, ue_per_ap=3,
                                 horizon_s=12.0)
    _check(table, 4)
    # robustness contract: the federated arm never attaches a smaller
    # fraction of the crowd than the centralized arm at any intensity
    success = table.column("attach_success")
    for cent, dlte in zip(success[0::2], success[1::2]):
        assert dlte >= cent


def test_e18_smoke():
    table = e18_sustained_overload.run(
        loads=(0.5, 5.0), n_aps=1, ue_per_ap=3, settle_s=4.0,
        warmup_s=1.0, measure_s=8.0)
    _check(table, 8)
    # robustness contract: at the overload point, AQM+ECN goodput is
    # never below the drop-tail control for the same architecture
    goodput = table.column("goodput_mbps")
    marks = table.column("ecn_marks")
    for droptail, aqm in zip(goodput[-4::2], goodput[-3::2]):
        assert aqm >= droptail
    # the AQM arm actually marked something at overload
    assert sum(marks[-3::2]) > 0


def test_e19_smoke():
    table = e19_city.run(n_cells=4, ue_per_cell=2, background_per_cell=12,
                         shards=2, horizon_s=4.0, invariants=True)
    _check(table, 2)
    # scaling contract: local cores never attach slower than the
    # centralized EPC, and their control traffic stays off the WAN
    mean_ms = table.column("mean_attach_ms")
    assert mean_ms[1] <= mean_ms[0]
    assert table.column("wan_ctl_mb")[1] == 0
    assert table.column("failures") == [0, 0]
