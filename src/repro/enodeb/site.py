"""Sectorized sites: several cells on one mast (the §5 deployment shape).

The Papua site is "two commercial eNodeBs (for two sectors), two 15dBi
antennas" — one roof, two directional cells splitting the azimuth. A
:class:`SectorSite` builds N :class:`Cell` instances sharing a position
and band, each behind a :class:`SectorAntenna` at an evenly-spaced
boresight, and steers every UE to the sector whose pattern serves it
best. Sectors reuse the same carrier; the antenna front-to-back ratio is
what isolates them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo.points import Point
from repro.phy.antenna import SectorAntenna, sector_boresights
from repro.phy.bands import Band
from repro.phy.linkbudget import LinkBudget, Radio


class SectorSite:
    """N sector cells on one mast."""

    def __init__(self, name: str, band: Band, position: Point,
                 link_budget: LinkBudget, n_sectors: int = 2,
                 tx_power_dbm: float = 43.0,
                 sector_gain_dbi: float = 15.0,
                 height_m: float = 30.0) -> None:
        if n_sectors < 1:
            raise ValueError("need at least one sector")
        self.name = name
        self.position = position
        self.cells: List[Cell] = []
        for i, boresight in enumerate(sector_boresights(n_sectors)):
            cell = Cell(f"{name}-s{i}", band, position, link_budget,
                        tx_power_dbm=tx_power_dbm,
                        antenna_gain_dbi=sector_gain_dbi,
                        height_m=height_m)
            cell.radio.antenna = SectorAntenna(
                boresight_rad=boresight, peak_gain_dbi=sector_gain_dbi)
            self.cells.append(cell)
        # same-mast sectors interfere through their pattern overlap
        for cell in self.cells:
            cell.interferers = [c for c in self.cells if c is not cell]

    @property
    def n_sectors(self) -> int:
        """Sector count."""
        return len(self.cells)

    def best_sector(self, ue_radio: Radio) -> Cell:
        """The sector whose pattern yields the strongest signal at a UE."""
        return max(self.cells,
                   key=lambda c: (c.rsrp_to(ue_radio), c.name))

    def add_ue(self, ctx: UeRadioContext) -> Cell:
        """Attach a UE to its best sector; returns the chosen cell."""
        cell = self.best_sector(ctx.radio)
        cell.add_ue(ctx)
        return cell

    def remove_ue(self, ue_id: str) -> None:
        """Detach a UE from whichever sector holds it."""
        for cell in self.cells:
            cell.remove_ue(ue_id)

    def attached_by_sector(self) -> Dict[str, List[str]]:
        """UE ids per sector (load balance inspection)."""
        return {cell.name: cell.attached_ues for cell in self.cells}

    def schedule_tti(self) -> Dict[str, float]:
        """Run one TTI on every sector; merged per-UE bits."""
        delivered: Dict[str, float] = {}
        for cell in self.cells:
            delivered.update(cell.schedule_tti())
        return delivered
