"""E14 (extension) — §7: what 5G-NR buys a dLTE federation.

Three radio generations on the same rural AP mast, same dLTE
architecture around them:

* **LTE band 5** — the paper's deployed baseline (10 MHz, 850 MHz).
* **NR n28** — the like-for-like upgrade: 700 MHz coverage layer,
  20 MHz, 256QAM.
* **NR n78 + massive MIMO** — the capacity play: 3.5 GHz, 100 MHz,
  64-element beamforming to claw back the propagation loss.

Measured: downlink rate vs distance, the range where each dies, and the
air-interface latency ladder across numerologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.geo.points import Point
from repro.metrics.tables import ResultTable
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import lte_efficiency_for_sinr
from repro.phy.nr import (
    LTE_TTI_S,
    NR_BANDS,
    NR_NUMEROLOGY,
    Numerology,
    air_interface_latency_s,
    beamforming_gain_db,
    nr_efficiency_for_sinr,
)
from repro.phy.propagation import model_for_frequency

DISTANCES_M = [250, 1000, 2000, 4000, 8000, 16000, 30000]


def _arm_rate_bps(band, distance_m: float, efficiency_fn,
                  extra_gain_db: float = 0.0) -> float:
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)
    ap = Radio(Point(0, 0), tx_power_dbm=43, antenna_gain_dbi=15,
               height_m=30.0)
    ue = Radio(Point(distance_m, 0), tx_power_dbm=23, height_m=1.5)
    snr = budget.snr_db(ap, ue) + extra_gain_db
    return efficiency_fn(snr) * band.bandwidth_hz


ARMS = [
    ("LTE band 5 (10 MHz)", get_band("lte5"), lte_efficiency_for_sinr, 0.0),
    ("NR n28 (20 MHz)", NR_BANDS["nr-n28"], nr_efficiency_for_sinr, 0.0),
    ("NR n78 (100 MHz, no BF)", NR_BANDS["nr-n78"],
     nr_efficiency_for_sinr, 0.0),
    ("NR n78 + 64-el beamforming", NR_BANDS["nr-n78"],
     nr_efficiency_for_sinr, beamforming_gain_db(64)),
]


def run(distances_m: Optional[List[float]] = None) -> ResultTable:
    """Downlink rate (Mbps) vs distance per radio generation."""
    distances = distances_m or DISTANCES_M
    table = ResultTable(
        "E14: dLTE radio upgrade — LTE vs NR, rate (Mbps) vs distance",
        ["arm"] + [f"d{int(d)}m" for d in distances])
    for name, band, eff_fn, gain in ARMS:
        row: Dict[str, object] = {"arm": name}
        for d in distances:
            row[f"d{int(d)}m"] = _arm_rate_bps(band, d, eff_fn, gain) / 1e6
        table.add_row(**row)
    return table


def latency_ladder() -> ResultTable:
    """Air-interface latency per numerology vs the LTE TTI."""
    table = ResultTable(
        "E14: air-interface scheduling latency per numerology",
        ["radio", "slot_ms", "air_latency_ms"])
    table.add_row(radio="LTE (1 ms TTI)", slot_ms=LTE_TTI_S * 1e3,
                  air_latency_ms=4 * LTE_TTI_S * 1e3)
    for mu in range(4):
        numerology = Numerology(mu)
        table.add_row(radio=f"NR mu={mu} ({numerology.scs_khz:g} kHz SCS)",
                      slot_ms=numerology.slot_duration_s * 1e3,
                      air_latency_ms=air_interface_latency_s(numerology) * 1e3)
    return table


def usable_range_m(arm_index: int) -> float:
    """Bisect the range where an arm's rate first hits zero."""
    name, band, eff_fn, gain = ARMS[arm_index]
    lo, hi = 100.0, 150_000.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if _arm_rate_bps(band, mid, eff_fn, gain) > 0:
            lo = mid
        else:
            hi = mid
    return lo


def range_summary() -> ResultTable:
    """Max usable range per radio generation."""
    table = ResultTable("E14: usable range per radio generation",
                        ["arm", "usable_km"])
    for i, (name, _band, _fn, _gain) in enumerate(ARMS):
        table.add_row(arm=name, usable_km=usable_range_m(i) / 1000.0)
    return table
