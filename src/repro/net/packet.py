"""The packet: what every layer of the reproduction passes around."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.net.addressing import IPv4Address

#: IPv4 + transport header budget charged to every packet.
IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated IP datagram.

    Attributes:
        src / dst: IP endpoints. Tunnels rewrite these and stash the
            originals on the ``encap_stack``.
        size_bytes: total on-wire size including headers; tunneling adds
            to it, decapsulation subtracts.
        flow_id: transport flow tag, "" for control traffic.
        seq: transport sequence number (flow-scoped).
        payload: opaque application/control content (e.g. a NAS message).
        created_at: simulated birth time, for latency accounting.
        hops: network nodes traversed, appended by the forwarding engine —
            this is how F1 reports path length.
        encap_stack: saved (src, dst, size) frames pushed by tunnels.
    """

    src: Optional[IPv4Address]
    dst: Optional[IPv4Address]
    size_bytes: int
    flow_id: str = ""
    seq: int = 0
    payload: Any = None
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: List[str] = field(default_factory=list)
    encap_stack: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def hop_count(self) -> int:
        """Number of forwarding nodes traversed so far."""
        return len(self.hops)

    @property
    def tunnel_depth(self) -> int:
        """How many encapsulation layers are currently on the packet."""
        return len(self.encap_stack)

    def record_hop(self, node_name: str) -> None:
        """Append a traversed node (called by the forwarding engine)."""
        self.hops.append(node_name)

    def age(self, now: float) -> float:
        """Seconds since the packet was created."""
        return now - self.created_at
