"""Bench E16 — resilience: failure domains vs failure rates (§4.3/§7)."""

import math

from conftest import emit, once

from repro.experiments import e16_resilience


def test_e16_resilience(benchmark):
    timeline, summary = once(benchmark, e16_resilience.run)
    emit([timeline, summary])
    rows = {row["arm"]: row for row in summary.rows}
    dlte = rows["dLTE (federated)"]
    cent = rows["Centralized LTE"]

    # the centralized EPC is a single point of failure: the outage takes
    # the WHOLE town offline...
    assert cent["min_reach_frac"] == 0.0
    # ...while the federation keeps every surviving site's clients up
    assert 0.0 < dlte["surviving_frac"] < 1.0
    assert dlte["min_reach_frac"] >= dlte["surviving_frac"]

    # both arms recover within a bounded number of probe/heartbeat
    # periods of the restore (no unbounded blackout)
    for row in (dlte, cent):
        assert math.isfinite(row["time_to_recover_s"])
        assert row["time_to_recover_s"] <= 5.0
    # the crashed AP's clients re-attach: nobody is left stuck
    assert dlte["stuck_ues"] == 0
    assert cent["stuck_ues"] == 0
    # town-wide blackout costs far more in-flight traffic than one site
    assert cent["probes_lost"] > dlte["probes_lost"]

    # deterministic from (seed, schedule): a re-run reproduces the
    # reachability timeline and summary exactly
    timeline2, summary2 = e16_resilience.run()
    assert timeline2.rows == timeline.rows
    assert summary2.rows == summary.rows
