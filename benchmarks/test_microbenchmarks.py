"""Micro-benchmarks: the hot paths of the simulation substrate.

Unlike the experiment benches (run-once macro results), these measure
raw component throughput with pytest-benchmark's normal multi-round
statistics — regressions here slow every experiment above.
"""

import numpy as np
import pytest

from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo import Point
from repro.mac.csma import CsmaNode, CsmaSimulation
from repro.mac.schedulers import ProportionalFairScheduler, SchedulableUser
from repro.metrics.stats import summarize
from repro.phy import LinkBudget, OkumuraHata, Radio, get_band
from repro.phy.propagation import cached_path_loss, model_for_frequency
from repro.simcore import Simulator
from repro.telemetry import MetricsRegistry


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch 10k timer events."""

    def run():
        sim = Simulator(0)
        for i in range(10_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_process_switch_throughput(benchmark):
    """Two processes ping-ponging through 2k timeouts."""

    def run():
        sim = Simulator(0)
        count = [0]

        def worker():
            for _ in range(1000):
                yield sim.timeout(0.001)
                count[0] += 1

        sim.process(worker())
        sim.process(worker())
        sim.run()
        return count[0]

    assert benchmark(run) == 2000


def test_pf_scheduler_tti_rate(benchmark):
    """One PF TTI over 20 users and 100 PRBs."""
    users = [SchedulableUser(f"u{i}", float(5 + i)) for i in range(20)]
    prbs = frozenset(range(100))
    sched = ProportionalFairScheduler()

    def tti():
        return sched.allocate(users, prbs)

    grants = benchmark(tti)
    assert sum(len(g) for g in grants.values()) == 100


def test_cell_tti_rate(benchmark):
    """A full cell TTI: link budgets + MCS + HARQ for 10 UEs."""
    band = get_band("lte5")
    budget = LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                        band.bandwidth_hz)
    cell = Cell("bench", band, Point(0, 0), budget)
    rng = np.random.default_rng(0)
    for i in range(10):
        cell.add_ue(UeRadioContext(
            f"u{i}", Radio(Point(float(rng.uniform(100, 3000)),
                                 float(rng.uniform(-500, 500))),
                           tx_power_dbm=23)))

    delivered = benchmark(cell.schedule_tti)
    assert delivered


def _massed_cell(n_ues: int, batch: bool) -> Cell:
    """One cell, PF downlink, ``n_ues`` randomly placed UEs."""
    band = get_band("lte5")
    budget = LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                        band.bandwidth_hz)
    cell = Cell("bench", band, Point(0, 0), budget,
                scheduler=ProportionalFairScheduler(), batch=batch)
    rng = np.random.default_rng(42)
    for i in range(n_ues):
        cell.add_ue(UeRadioContext(
            f"u{i:04d}", Radio(Point(float(rng.uniform(100, 4000)),
                                     float(rng.uniform(-2000, 2000))),
                               tx_power_dbm=23)))
    return cell


@pytest.mark.parametrize("n_ues", [64, 256, 1024])
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_cell_tti_ue_scaling(benchmark, n_ues, mode):
    """UE-count scaling of one steady-state TTI, scalar vs batch.

    The batch engine's payoff grows with UE count: the scalar path is
    O(n) Python objects per TTI while the batch path amortizes the PHY
    into cached arrays. Before timing, one TTI on a paired cell of the
    *other* flavor checks the two paths deliver byte-identical maps at
    this scale (the contract PERFORMANCE.md documents)."""
    cell = _massed_cell(n_ues, batch=(mode == "batch"))
    twin = _massed_cell(n_ues, batch=(mode != "batch"))
    first, twin_first = cell.schedule_tti(), twin.schedule_tti()
    assert first == twin_first and list(first) == list(twin_first)

    delivered = benchmark(cell.schedule_tti)
    assert delivered


def test_csma_slot_rate(benchmark):
    """50k CSMA slots over a 6-node contention domain."""
    ids = [f"s{i}" for i in range(6)]
    everyone = frozenset(ids)

    def run():
        nodes = [CsmaNode(i, hears=everyone - {i}) for i in ids]
        sim = CsmaSimulation(nodes, np.random.default_rng(1), frame_slots=50)
        return sim.run(50_000)

    result = benchmark(run)
    assert result.total_delivered > 0


def test_summarize_ndarray_fast_path(benchmark):
    """summarize() on a 100k-sample ndarray: no copies, one sort."""
    samples = np.random.default_rng(7).exponential(2.0, size=100_000)

    summary = benchmark(summarize, samples)
    assert summary["count"] == 100_000
    assert summary["median"] <= summary["p95"]


def test_path_loss_vectorized_vs_scalar(benchmark):
    """The E3/E4 grid fast path: one ``path_loss_db_many`` call over a
    4k-point distance grid, checked against the scalar model per point
    (the fast path must agree to well under 1e-9 dB)."""
    freq = 881.5
    model = model_for_frequency(freq)
    distances = np.linspace(50.0, 30_000.0, 4096)

    losses = benchmark(model.path_loss_db_many, distances, freq)
    scalar = [model.path_loss_db(float(d), freq) for d in distances]
    assert np.max(np.abs(losses - np.asarray(scalar))) < 1e-9


def test_cached_path_loss_lookup_rate(benchmark):
    """The stationary-link fast path: the memoized per-(model, freq)
    loss closure on a small recurring distance set — the per-TTI pattern
    every cell produces — must match the uncached model exactly."""
    freq = 881.5
    model = model_for_frequency(freq)
    lookup = cached_path_loss(model, freq)
    distances = [float(d) for d in np.linspace(100.0, 3000.0, 32)]

    def hot_loop():
        total = 0.0
        for _ in range(1000):
            for d in distances:
                total += lookup(d)
        return total

    total = benchmark(hot_loop)
    expected = 1000 * sum(model.path_loss_db(d, freq) for d in distances)
    assert abs(total - expected) < 1e-9 * expected
    for d in distances:
        assert abs(lookup(d) - model.path_loss_db(d, freq)) < 1e-9


def test_link_budget_cached_snr(benchmark):
    """LinkBudget's distance memo + cached noise floor: repeated SNR
    evaluations of a stationary link collapse to dict hits, and agree
    with a fresh (cold-cache) budget to 1e-9 dB."""
    band = get_band("lte5")
    model = OkumuraHata(environment="open")
    budget = LinkBudget(model, band.dl_mhz, band.bandwidth_hz)
    ap = Radio(Point(0, 0), tx_power_dbm=43, antenna_gain_dbi=15,
               height_m=30.0)
    ues = [Radio(Point(100.0 * (i + 1), 0), tx_power_dbm=23) for i in range(16)]

    def hot_loop():
        total = 0.0
        for _ in range(1000):
            for ue in ues:
                total += budget.snr_db(ap, ue)
        return total

    total = benchmark(hot_loop)
    cold = LinkBudget(model, band.dl_mhz, band.bandwidth_hz)
    expected = 1000 * sum(cold.snr_db(ap, ue) for ue in ues)
    assert abs(total - expected) < 1e-9 * abs(expected)


@pytest.mark.parametrize("mode", ["drop-tail", "codel", "red"])
def test_link_pump_rate(benchmark, mode):
    """10k packets through one link: the drop-tail fast path vs AQM.

    The ``drop-tail`` row is the seed's path and the one the regression
    gate cares about — managed mode must stay default-off, so a link
    with no AQM installed pays only the single ``_managed`` branch (the
    ledger provably untouched, asserted below). The ``codel``/``red``
    rows price the managed path for comparison."""
    from repro.net.aqm import make_aqm
    from repro.net.links import Link
    from repro.net.packet import Packet

    def run():
        sim = Simulator(0)
        link = Link(sim, rate_bps=float("inf"), delay_s=0.0, name="pump")
        aqm = make_aqm(mode)
        if aqm is not None:
            link.set_aqm(aqm)
        link.connect(lambda p: None)
        packet = Packet(src=None, dst=None, size_bytes=1200)
        for i in range(10_000):
            sim.schedule(i * 1e-5, link.send, packet)
        sim.run()
        return link

    link = benchmark(run)
    assert link.delivered == 10_000
    if mode == "drop-tail":
        # default-off proof: no AQM, no managed state, no byte ledger
        assert not link._managed
        assert link.offered_bytes == 0 and link.delivered_bytes == 0


def test_metrics_hot_path_rate(benchmark):
    """The per-event telemetry cost: cached counter inc + histogram
    observe, the pattern every instrumented component uses."""
    registry = MetricsRegistry()
    counter = registry.counter("net.link.delivered", link="bench")
    hist = registry.histogram("phy.sinr_db", cell="bench")

    def hot_loop():
        for i in range(10_000):
            counter.inc()
            hist.observe(float(i % 40))
        return counter.value

    assert benchmark(hot_loop) > 0
