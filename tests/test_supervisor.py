"""Tests for the supervised runner (repro.runner.supervisor).

Covers the PR-4 execution layer: ordered results under supervision,
crash/hang detection with SIGKILL + bounded retry, byte-identical
retried tasks, original-traceback propagation for worker exceptions,
checkpoint replay, and the chaos hooks the CLI kill-tests use.
"""

import os
import signal
import time

import pytest

from repro.runner import (
    SupervisorReport,
    SweepCheckpoint,
    TaskFailedError,
    supervised_map,
)
from repro.runner.supervisor import TaskFailure


def _square(x):
    return x * x


def _misbehave_once(arg):
    """Crash or hang on the first attempt (marker file = already fired)."""
    value, action, marker_dir = arg
    marker = os.path.join(marker_dir, f"fired-{value}")
    if action != "ok" and not os.path.exists(marker):
        open(marker, "w").close()
        if action == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(3600)  # hang: the supervisor must kill us
    return value * value


def _always_crash(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_value_error(x):
    raise ValueError(f"bad item {x}")


def _record_run(arg):
    value, out_dir = arg
    open(os.path.join(out_dir, f"ran-{value}"), "w").close()
    return value * 10


# -- ordered map contract -----------------------------------------------------------


def test_results_in_item_order():
    items = list(range(12))
    assert supervised_map(_square, items, jobs=4) == [i * i for i in items]


def test_serial_mode_matches():
    assert supervised_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]


def test_validations():
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], jobs=0)
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], jobs=2, retries=-1)
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], jobs=2, labels=["a"])
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], jobs=2, labels=["a", "a"])
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], jobs=2, heartbeat_s=0.0)


# -- crash detection + retry --------------------------------------------------------


def test_crashed_worker_retried_with_identical_result(tmp_path):
    items = [(2, "crash", str(tmp_path)), (3, "ok", str(tmp_path))]
    report = SupervisorReport()
    results = supervised_map(_misbehave_once, items, jobs=2, retries=1,
                             report=report)
    # the retried task reproduces the same answer the clean run gives
    assert results == [4, 9]
    assert report.crashes == 1
    assert report.retries == 1
    assert report.completed == 2
    assert [f.kind for f in report.failures] == ["crash"]
    assert report.failures[0].attempt == 1


def test_retry_budget_exhausted_raises(tmp_path):
    with pytest.raises(TaskFailedError) as excinfo:
        supervised_map(_always_crash, [1, 2], jobs=2, retries=1,
                       labels=["left", "right"])
    err = excinfo.value
    assert err.failure.kind == "crash"
    assert err.failure.label in ("left", "right")
    assert len(err.history) == 2  # first attempt + one retry
    assert "failed 2 time(s)" in str(err)


# -- hang detection (deadline) ------------------------------------------------------


def test_hung_task_killed_and_retried(tmp_path):
    items = [(5, "hang", str(tmp_path)), (6, "ok", str(tmp_path))]
    report = SupervisorReport()
    results = supervised_map(_misbehave_once, items, jobs=2, retries=1,
                             task_timeout_s=1.0, report=report)
    assert results == [25, 36]
    assert report.hangs == 1
    assert report.retries == 1
    assert report.failures[0].kind == "hang"
    assert report.failures[0].elapsed_s >= 1.0


# -- worker exceptions (satellite: original traceback, annotated) -------------------


def test_worker_exception_surfaces_original_traceback():
    with pytest.raises(TaskFailedError) as excinfo:
        supervised_map(_raise_value_error, [7, 8], jobs=2,
                       labels=["exp:A", "exp:B"])
    message = str(excinfo.value)
    # the worker-side traceback survives into the parent error ...
    assert "ValueError" in message
    assert "bad item" in message
    assert "_raise_value_error" in message
    # ... annotated with the task's label and item
    assert "exp:" in message
    assert excinfo.value.failure.kind == "exception"


def test_serial_exception_same_contract():
    with pytest.raises(TaskFailedError) as excinfo:
        supervised_map(_raise_value_error, [9], jobs=1, labels=["exp:S"])
    message = str(excinfo.value)
    assert "ValueError: bad item 9" in message
    assert "exp:S" in message


# -- checkpoint replay --------------------------------------------------------------


def test_checkpoint_skips_journaled_tasks(tmp_path):
    run_dir = str(tmp_path / "ckpt")
    out_dir = tmp_path / "out1"
    out_dir.mkdir()
    items = [(1, str(out_dir)), (2, str(out_dir))]
    with SweepCheckpoint(run_dir, run_id="t") as ckpt:
        first = supervised_map(_record_run, items, jobs=2,
                               labels=["a", "b"], checkpoint=ckpt)
    assert first == [10, 20]
    assert sorted(os.listdir(out_dir)) == ["ran-1", "ran-2"]

    # a resumed run replays from the journal without executing anything
    out2 = tmp_path / "out2"
    out2.mkdir()
    items2 = [(1, str(out2)), (2, str(out2))]
    report = SupervisorReport()
    with SweepCheckpoint(run_dir, run_id="t") as ckpt:
        again = supervised_map(_record_run, items2, jobs=2,
                               labels=["a", "b"], checkpoint=ckpt,
                               report=report)
    assert again == [10, 20]
    assert os.listdir(out2) == []  # nothing re-ran
    assert report.replayed_from_checkpoint == 2


# -- chaos hooks --------------------------------------------------------------------


def test_chaos_plan_matches_labels_containing_colons(tmp_path, monkeypatch):
    # regression: "exp:E16:crash" must parse as label "exp:E16", action
    # "crash" (the action is after the *last* colon, not the first)
    monkeypatch.setenv("REPRO_CHAOS_PLAN", "exp:E1:crash")
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
    report = SupervisorReport()
    results = supervised_map(_square, [4, 5], jobs=2,
                             labels=["exp:E1", "exp:E2"], retries=1,
                             report=report)
    assert results == [16, 25]
    assert report.crashes == 1
    assert (tmp_path / "chaos-exp:E1.done").exists()


# -- report -------------------------------------------------------------------------


def test_report_counters_and_str():
    report = SupervisorReport()
    report.record(TaskFailure(label="x", slot=0, attempt=1, kind="crash",
                              detail="", elapsed_s=0.1))
    report.record(TaskFailure(label="y", slot=1, attempt=2, kind="hang",
                              detail="", elapsed_s=2.0))
    report.record(TaskFailure(label="z", slot=2, attempt=1,
                              kind="exception", detail="Boom", elapsed_s=0.0))
    assert (report.crashes, report.hangs, report.exceptions) == (1, 1, 1)
    assert len(report.failures) == 3
    text = str(report)
    assert "crashes=1" in text and "hangs=1" in text
    assert "Boom" in str(report.failures[2])
