"""The dLTE access point: everything one site needs, in one box (§4).

A :class:`DLTEAccessPoint` composes:

* an eNodeB (control relay + radio cell),
* a :class:`LocalCoreStub` (the collapsed EPC, §4.1),
* a gateway router with its *own* public address pool, attached straight
  to the Internet — local breakout, no tunnel leaves the site (§4.2),
* an :class:`X2Endpoint` + :class:`FairSharingCoordinator` for peer
  coordination over the Internet (§4.3),
* a spectrum-registry client for licensing and peer discovery.

The lifecycle mirrors the paper's §4.3 narrative: ``register_spectrum``
(get a license), ``discover_and_peer`` (learn the contention domain,
connect X2, converge on a grid split), then serve clients.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from repro.coordination.fair_sharing import FairSharingCoordinator
from repro.coordination.x2 import X2Endpoint
from repro.enodeb.cell import Cell, UeRadioContext
from repro.enodeb.relay import EnbControlRelay
from repro.epc.agents import ControlChannel
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.stub import LocalCoreStub
from repro.epc.ue import UserEquipment
from repro.geo.points import Point
from repro.net.addressing import AddressPool, IPv4Address
from repro.net.internet import InternetCore
from repro.net.nodes import Host, Router
from repro.phy.bands import Band
from repro.phy.fading import ShadowingField
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.propagation import model_for_frequency
from repro.simcore.simulator import Simulator
from repro.spectrum.grants import ApRecord, SpectrumGrant
from repro.spectrum.registry import SpectrumRegistry

#: One-way RRC/air-interface latency.
AIR_DELAY_S = 0.005
#: On-box S1 between the eNodeB and its stub.
LOCAL_S1_DELAY_S = 0.1e-3


class DLTEAccessPoint:
    """One federated dLTE site."""

    def __init__(self, sim: Simulator, ap_id: str, position: Point,
                 band: Band, internet: InternetCore,
                 spectrum_registry: Optional[SpectrumRegistry],
                 key_registry: Optional[PublishedKeyRegistry],
                 pool_prefix: str,
                 backhaul_delay_s: float = 0.025,
                 backhaul_rate_bps: float = 50e6,
                 tx_power_dbm: float = 43.0,
                 antenna_gain_dbi: float = 15.0,
                 height_m: float = 30.0,
                 shadowing: Optional[ShadowingField] = None) -> None:
        self.sim = sim
        self.ap_id = ap_id
        self.position = position
        self.band = band
        self.internet = internet
        self.spectrum_registry = spectrum_registry
        self.backhaul_delay_s = backhaul_delay_s

        # gateway + local breakout
        self.router = Router(sim, f"{ap_id}-gw")
        internet.attach(self.router, pool_prefix,
                        access_delay_s=backhaul_delay_s,
                        access_rate_bps=backhaul_rate_bps)
        self.pool = AddressPool(pool_prefix)

        # local core stub
        self.stub = LocalCoreStub(sim, f"{ap_id}-core", self.pool,
                                  registry=key_registry)
        self.stub.on_session_created = self._on_session_created
        self.stub.on_session_deleted = self._on_session_deleted

        # eNodeB: control relay + radio cell
        self.enb = EnbControlRelay(sim, f"{ap_id}-enb")
        s1 = ControlChannel(sim, self.enb, self.stub, LOCAL_S1_DELAY_S,
                            name=f"s1:{ap_id}")
        self.enb.connect_core(s1)
        self.stub.connect_enb(s1)

        budget = LinkBudget(
            model_for_frequency(band.dl_mhz, bs_height_m=height_m),
            freq_mhz=band.dl_mhz, bandwidth_hz=band.bandwidth_hz,
            shadowing=shadowing)
        self.cell = Cell(f"{ap_id}-cell", band, position, budget,
                         tx_power_dbm=tx_power_dbm,
                         antenna_gain_dbi=antenna_gain_dbi,
                         height_m=height_m)

        # peer coordination
        self.x2 = X2Endpoint(sim, ap_id)
        self.coordinator = FairSharingCoordinator(
            self.x2, self.cell.grid, on_converged=self._install_slice)
        self.x2.add_handler(self._on_x2_message)
        self._pending_handover_acks: Dict[str, Callable[[bool], None]] = {}
        self.handovers_in = 0
        self.handovers_out = 0

        # spectrum state
        self.grant: Optional[SpectrumGrant] = None
        self.neighbors: List[ApRecord] = []
        self.peer_monitor = None  # created by start_peer_monitor()
        self.lease_renewals = 0
        self.lease_renewal_failures = 0
        self._renewing_lease = False

        # crash/restart lifecycle
        self.alive = True
        self.crashes = 0
        self._saved_x2_handlers: List[Callable] = []

        metrics = sim.metrics
        self._m_renewals = metrics.counter("spectrum.lease.renewals",
                                           ap=ap_id)
        self._m_renewal_failures = metrics.counter(
            "spectrum.lease.renewal_failures", ap=ap_id)
        self._m_crashes = metrics.counter("core.ap.crashes", ap=ap_id)
        self._m_handovers_in = metrics.counter("core.ap.handovers_in",
                                               ap=ap_id)
        self._m_handovers_out = metrics.counter("core.ap.handovers_out",
                                                ap=ap_id)

        # attached clients
        self._ue_hosts: Dict[str, Host] = {}
        self._ue_objects: Dict[str, UserEquipment] = {}
        self._ue_addresses: Dict[str, IPv4Address] = {}

    # -- spectrum lifecycle --------------------------------------------------------

    @property
    def record(self) -> ApRecord:
        """This AP's registry record."""
        return ApRecord(ap_id=self.ap_id, position=self.position,
                        band=self.band,
                        eirp_dbm=self.cell.radio.eirp_dbm,
                        contact=self.router.name)

    @property
    def grant_active(self) -> bool:
        """True while the held grant is in force (``active_at`` now)."""
        return self.grant is not None and self.grant.active_at(self.sim.now)

    def register_spectrum(self,
                          callback: Optional[Callable[[bool], None]] = None
                          ) -> None:
        """Request a license; ``callback(granted)`` when decided.

        Leased grants (``expires_at`` set) start the renewal loop
        automatically: the lease is heartbeat-renewed ahead of expiry
        and lapses if the registry stays unreachable.
        """
        if self.spectrum_registry is None:
            raise RuntimeError(f"{self.ap_id}: no spectrum registry configured")

        def on_grant(grant: Optional[SpectrumGrant]) -> None:
            self.grant = grant
            if grant is not None and grant.expires_at is not None:
                self.start_lease_renewal()
            if callback is not None:
                callback(grant is not None)

        self.spectrum_registry.request_grant(self.record, on_grant)

    # -- lease renewal ---------------------------------------------------------------

    def start_lease_renewal(self, margin_frac: float = 0.5,
                            retry_backoff_s: float = 5.0) -> None:
        """Keep a leased grant alive: heartbeat the registry ahead of
        ``expires_at``; retry on failure; re-register once a lapsed
        lease can be re-acquired (idempotent)."""
        if self._renewing_lease:
            return
        if not 0.0 < margin_frac < 1.0:
            raise ValueError("margin fraction must be in (0, 1)")
        if retry_backoff_s <= 0:
            raise ValueError("retry backoff must be positive")
        self._renewing_lease = True
        self.sim.process(self._lease_loop(margin_frac, retry_backoff_s),
                         name=f"lease:{self.ap_id}")

    def stop_lease_renewal(self) -> None:
        """Stop renewing (the grant then lapses at its ``expires_at``)."""
        self._renewing_lease = False

    def _lease_loop(self, margin_frac: float, retry_backoff_s: float):
        heartbeat = getattr(self.spectrum_registry, "heartbeat", None)
        while self._renewing_lease and self.alive:
            grant = self.grant
            if grant is None or grant.expires_at is None or heartbeat is None:
                break  # nothing to renew (perpetual or lease-free design)
            wait = max((grant.expires_at - self.sim.now) * margin_frac, 1e-3)
            yield self.sim.timeout(wait)
            if not (self._renewing_lease and self.alive):
                break
            done = self.sim.event(f"lease-renew:{self.ap_id}")
            renew_span = self.sim.span("spectrum.lease.renew", ap=self.ap_id)
            heartbeat(self.ap_id, done.succeed)
            renewed = yield done
            if renewed is not None:
                self.grant = renewed
                self.lease_renewals += 1
                self._m_renewals.inc()
                renew_span.end(status="ok")
                continue
            self.lease_renewal_failures += 1
            self._m_renewal_failures.inc()
            renew_span.end(status="failed")
            self.sim.trace("spectrum", f"{self.ap_id}: lease renewal failed",
                           active=self.grant_active)
            if not self.grant_active and self.spectrum_registry.is_available():
                # the lease lapsed (registry outage outlived it): the
                # registry wants a fresh registration, not a heartbeat —
                # and on success the renewal schedule resumes at once
                # (sleeping the retry backoff could outlive the new lease)
                redone = self.sim.event(f"lease-rereg:{self.ap_id}")
                self.register_spectrum(redone.succeed)
                ok = yield redone
                if ok:
                    continue
            yield self.sim.timeout(retry_backoff_s)
        self._renewing_lease = False

    # -- crash/restart lifecycle --------------------------------------------------

    def crash(self) -> None:
        """The box loses power: coordination goes silent (peers must
        *detect* the death), every client's RRC/session/address is gone,
        and the stub forgets its RAM state."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self._m_crashes.inc()
        self.sim.trace("fault", f"{self.ap_id}: crashed")
        if self.peer_monitor is not None:
            self.peer_monitor.stop()
        self._saved_x2_handlers = list(self.x2.handlers)
        self.x2.handlers.clear()
        self.stop_lease_renewal()
        # a rebooted box must not transmit on its pre-crash slice: the
        # survivors re-split the spectrum the moment they declare us
        # dead, so the stale slice may overlap theirs. Forfeit it now;
        # the full grid is the "not (re)converged" sentinel the slice
        # invariant recognizes, and re-peering assigns the real slice.
        self.cell.allowed_prbs = self.cell.grid.all_prbs
        for ue in list(self._ue_objects.values()):
            self.disconnect_ue(ue)
            ue.radio_lost()
        self.stub.crash()

    def restart(self, directory: Optional[Dict[str, "DLTEAccessPoint"]] = None,
                on_ready: Optional[Callable[[bool], None]] = None) -> None:
        """Power restored: replay the §4.3 lifecycle — re-register
        spectrum, re-discover and re-peer (when ``directory`` is given),
        resume the peer monitor. Clients reconnect separately (see
        :meth:`DLTENetwork.restart_ap`); ``on_ready(ok)`` fires once the
        control plane is back."""
        if self.alive:
            return
        self.alive = True
        self.sim.trace("fault", f"{self.ap_id}: restarting")
        # a rebooted box holds no connections: drop any peering that
        # survived the crash on our side (peers that already declared
        # us dead severed theirs), then re-peer from discovery — else
        # a half-open channel to a still-dead peer leaves us waiting
        # for a claim that can never come while we serve a stale slice
        for peer_ap_id in list(self.x2.peer_ids):
            self.x2.disconnect_peer(peer_ap_id)
        self.stub.restart()
        for handler in self._saved_x2_handlers:
            if handler not in self.x2.handlers:
                self.x2.handlers.append(handler)
        self._saved_x2_handlers = []

        def peered(_n_peers: int) -> None:
            if self.peer_monitor is not None:
                self.peer_monitor.start()
            if on_ready is not None:
                on_ready(True)

        def after_grant(ok: bool) -> None:
            if not ok:
                if on_ready is not None:
                    on_ready(False)
                return
            if directory is not None:
                self.discover_and_peer(directory, done=peered)
            else:
                peered(0)

        self.register_spectrum(after_grant)

    def discover_and_peer(self, directory: Dict[str, "DLTEAccessPoint"],
                          done: Optional[Callable[[int], None]] = None) -> None:
        """Find contention-domain peers, connect X2, start fair sharing.

        ``directory`` maps ap_id -> AP for rendezvous (the registry gives
        us *who*; the directory stands in for their Internet contacts).
        X2 latency is the real Internet RTT between the two gateways.
        """
        if self.grant is None:
            raise RuntimeError(f"{self.ap_id}: register spectrum first")

        def on_neighbors(records: List[ApRecord]) -> None:
            self.neighbors = records
            for record in records:
                peer = directory.get(record.ap_id)
                # a crashed AP's stale registry record still names a
                # contact, but connecting to a dead box just fails —
                # it will (re)peer with us itself when it comes back
                if peer is None or not getattr(peer, "alive", True):
                    continue
                one_way = self.internet.rtt_between_s(
                    self.router.name, peer.router.name) / 2.0
                self.x2.connect_peer(peer.x2, one_way_delay_s=one_way)
            self.coordinator.announce()
            if done is not None:
                done(len(records))

        self.spectrum_registry.discover_neighbors(self.ap_id, on_neighbors)

    def _install_slice(self, prbs: FrozenSet[int]) -> None:
        self.cell.allowed_prbs = prbs

    def start_peer_monitor(self, heartbeat_s: float = 2.0) -> None:
        """Run the dLTE peer-status extension: detect dead peers and
        reclaim their spectrum (call after peering is established)."""
        from repro.coordination.peer_monitor import PeerMonitor

        if self.peer_monitor is None:
            self.peer_monitor = PeerMonitor(self.sim, self.x2,
                                            self.coordinator,
                                            heartbeat_s=heartbeat_s)
        self.peer_monitor.start()

    # -- client lifecycle ------------------------------------------------------------

    def connect_ue(self, ue: UserEquipment, ue_host: Host,
                   ue_radio: Radio) -> None:
        """Establish the RRC connection and data link; then UE may attach."""
        if ue.ue_id in self._ue_hosts:
            raise ValueError(f"UE {ue.ue_id} already connected to {self.ap_id}")
        air = ControlChannel(self.sim, ue, self.enb, AIR_DELAY_S,
                             name=f"air:{ue.ue_id}@{self.ap_id}")
        ue.connect_air(air)
        self.enb.attach_ue(ue.ue_id, air)
        self.cell.add_ue(UeRadioContext(ue_id=ue.ue_id, radio=ue_radio))
        # data-plane link: air latency; rate refined per-TTI by the cell
        ue_host.connect_bidirectional(self.router, rate_bps=50e6,
                                      delay_s=AIR_DELAY_S)
        ue_host.default_gateway = self.router.name
        self._ue_hosts[ue.ue_id] = ue_host
        self._ue_objects[ue.ue_id] = ue

    def disconnect_ue(self, ue: UserEquipment) -> None:
        """Tear down radio + data link (after detach, or on radio loss)."""
        host = self._ue_hosts.pop(ue.ue_id, None)
        self._ue_objects.pop(ue.ue_id, None)
        self.enb.detach_ue(ue.ue_id)
        self.cell.remove_ue(ue.ue_id)
        if host is not None:
            host.links.pop(self.router.name, None)
            self.router.links.pop(host.name, None)
            self.router.remove_routes_to(host.name)
            stale = self._ue_addresses.pop(ue.ue_id, None)
            if stale is not None and stale in host.addresses:
                host.remove_address(stale)

    def _on_session_created(self, ue_id: str, address: IPv4Address) -> None:
        host = self._ue_hosts.get(ue_id)
        if host is None:
            return
        host.add_address(address)
        self._ue_addresses[ue_id] = address
        self.router.add_route(f"{address}/32", host.name)

    def _on_session_deleted(self, ue_id: str) -> None:
        host = self._ue_hosts.get(ue_id)
        address = self._ue_addresses.pop(ue_id, None)
        if host is not None and address is not None:
            if address in host.addresses:
                host.remove_address(address)
            self.router.remove_routes_to(host.name)

    # -- X2 handover (coordinated handoff, §4.3 cooperative mode) ---------------

    def request_handover(self, ue: UserEquipment,
                         target_ap_id: str,
                         on_decided: Optional[Callable[[bool], None]] = None
                         ) -> None:
        """Start an X2 handover: offer the UE (with its security context)
        to a peer AP.

        The target pre-loads the UE's cached key so its stub admits the
        client without a registry fetch; the decision comes back via
        ``on_decided(admitted)`` after one X2 round trip. Moving the UE's
        radio/data attachment is the caller's job once admitted (see
        tests for the full sequence).
        """
        from repro.coordination.x2 import HandoverRequest

        if target_ap_id not in self.x2.peer_ids:
            raise KeyError(f"{self.ap_id} has no X2 peering with "
                           f"{target_ap_id!r}")
        key = self.stub._key_cache.get(ue.profile.imsi)
        if on_decided is not None:
            self._pending_handover_acks[ue.ue_id] = on_decided
        self.x2.send(target_ap_id, HandoverRequest(
            sender_ap=self.ap_id, ue_id=ue.ue_id, imsi=ue.profile.imsi,
            key_context=key))

    def _on_x2_message(self, from_ap: str, message) -> None:
        from repro.coordination.x2 import HandoverRequest, HandoverRequestAck

        if isinstance(message, HandoverRequest):
            # admission control: accept while the pool has room
            admitted = self.pool.in_use < self.pool.capacity
            if admitted and message.key_context is not None:
                self.stub.preload_key(message.imsi, message.key_context)
            if admitted:
                self.handovers_in += 1
                self._m_handovers_in.inc()
            self.x2.send(from_ap, HandoverRequestAck(
                sender_ap=self.ap_id, ue_id=message.ue_id,
                admitted=admitted))
        elif isinstance(message, HandoverRequestAck):
            callback = self._pending_handover_acks.pop(message.ue_id, None)
            if callback is not None:
                if message.admitted:
                    self.handovers_out += 1
                    self._m_handovers_out.inc()
                callback(message.admitted)

    @property
    def attached_count(self) -> int:
        """Active sessions at the stub."""
        return len(self.stub.sessions)

    def __repr__(self) -> str:
        return (f"<DLTEAccessPoint {self.ap_id} band={self.band.name} "
                f"sessions={self.attached_count}>")
