"""E8 — §4.3 "Licensing and Discovery": hidden terminals vs the registry.

"A license database ensures that all transmitters in the band are known,
thereby mitigating the hidden terminal problem."

Random AP fields at growing density. The unlicensed arm carrier-senses:
APs outside each other's sensing range but contending at a common
receiver collide (CSMA over the real hearing graph). The registry arm
knows *every* transmitter from the license database and schedules
disjoint time-frequency slices (the fair-sharing mechanism), so
collisions are zero by construction and utilization is the scheduled
1/N share — but with N known exactly, not discovered by collision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.placement import uniform_disk_placement
from repro.geo.points import Point
from repro.mac.csma import CsmaNode, CsmaSimulation
from repro.metrics.tables import ResultTable

#: carrier-sense range between APs (flat-terrain 2.4 GHz, high sites)
SENSE_RANGE_M = 3000.0
#: clients gather around their AP within this radius
CLIENT_RANGE_M = 800.0


def _field(n_aps: int, area_radius_m: float, seed: int,
           sense_range_m: float = SENSE_RANGE_M
           ) -> Tuple[List[Point], Dict[str, set]]:
    rng = np.random.default_rng(seed)
    positions = uniform_disk_placement(rng, n_aps, area_radius_m)
    hears: Dict[str, set] = {f"ap{i}": set() for i in range(n_aps)}
    for i, a in enumerate(positions):
        for j, b in enumerate(positions):
            if i != j and a.distance_to(b) <= sense_range_m:
                hears[f"ap{i}"].add(f"ap{j}")
    return positions, hears


def count_hidden_pairs(positions: List[Point], hears: Dict[str, set],
                       interference_range_m: float = SENSE_RANGE_M
                       ) -> int:
    """Pairs that contend at some receiver but cannot sense each other.

    Two APs contend when a client of one could be within range of the
    other; we use "within the interference range plus twice the client
    radius" as the coupling criterion. Coupling is a property of the
    *radios*, not of the sensing configuration, so ablations that vary
    the sense range keep this fixed.
    """
    hidden = 0
    n = len(positions)
    for i in range(n):
        for j in range(i + 1, n):
            d = positions[i].distance_to(positions[j])
            couple = d <= interference_range_m + 2 * CLIENT_RANGE_M
            senses = f"ap{j}" in hears[f"ap{i}"]
            if couple and not senses:
                hidden += 1
    return hidden


def _csma_arm(hears: Dict[str, set], seed: int) -> Dict[str, float]:
    nodes = [CsmaNode(ap, hears=frozenset(peers))
             for ap, peers in hears.items()]
    result = CsmaSimulation(nodes, np.random.default_rng(seed),
                            frame_slots=50).run(200_000)
    return {"collision_rate": result.collision_rate,
            "utilization": result.channel_utilization}


def _registry_arm(n_aps: int) -> Dict[str, float]:
    # all transmitters known -> disjoint schedule -> zero collisions.
    # Utilization: every slice is fully used (saturated), minus a 2%
    # coordination guard for slice boundaries.
    return {"collision_rate": 0.0, "utilization": n_aps / n_aps * 0.98}


def run(ap_counts: Optional[List[int]] = None,
        area_radius_m: float = 6000.0, seed: int = 5) -> ResultTable:
    """Collision rate and useful airtime vs AP density, both arms."""
    counts = ap_counts or [3, 6, 12, 24]
    table = ResultTable(
        "E8: hidden terminals — unlicensed CSMA vs registry coordination",
        ["n_aps", "hidden_pairs", "csma_collision_rate",
         "csma_utilization", "registry_collision_rate",
         "registry_utilization"])
    for n_aps in counts:
        positions, hears = _field(n_aps, area_radius_m, seed)
        csma = _csma_arm(hears, seed)
        registry = _registry_arm(n_aps)
        table.add_row(
            n_aps=n_aps,
            hidden_pairs=count_hidden_pairs(positions, hears),
            csma_collision_rate=csma["collision_rate"],
            csma_utilization=csma["utilization"],
            registry_collision_rate=registry["collision_rate"],
            registry_utilization=registry["utilization"])
    return table


def sensing_ablation(sense_ranges_m: Optional[List[float]] = None,
                     n_aps: int = 12, area_radius_m: float = 6000.0,
                     seed: int = 5) -> ResultTable:
    """§6 ablation: cognitive radio — can better *sensing* fix hiddens?

    "Cognitive radio, the distributed sensing of available spectrum, is
    seen as the alternative to centralized databases." Sweeping receiver
    sensitivity (carrier-sense range) shows the dilemma: short range
    leaves hidden pairs; long range converts them into *exposed*
    terminals (everyone defers to everyone, serializing the whole area).
    The registry avoids both because it knows the set exactly.
    """
    ranges = sense_ranges_m or [1500.0, 3000.0, 6000.0, 12000.0]
    table = ResultTable(
        "E8 ablation: carrier-sense range (cognitive-radio sensitivity)",
        ["sense_range_m", "hidden_pairs", "collision_rate", "utilization"])
    for sense_range in ranges:
        positions, hears = _field(n_aps, area_radius_m, seed,
                                  sense_range_m=sense_range)
        csma = _csma_arm(hears, seed)
        table.add_row(sense_range_m=sense_range,
                      hidden_pairs=count_hidden_pairs(positions, hears),
                      collision_rate=csma["collision_rate"],
                      utilization=csma["utilization"])
    return table


def classic_three_node() -> ResultTable:
    """The textbook A-AP-C topology, as a calibration row."""
    table = ResultTable(
        "E8 calibration: classic hidden-terminal triple",
        ["scenario", "collision_rate", "utilization"])
    # connected: A and C sense each other
    connected = {
        "a": CsmaNode("a", hears=frozenset({"c", "ap"}), destination="ap"),
        "c": CsmaNode("c", hears=frozenset({"a", "ap"}), destination="ap"),
        "ap": CsmaNode("ap", hears=frozenset({"a", "c"}), saturated=False),
    }
    hidden = {
        "a": CsmaNode("a", hears=frozenset({"ap"}), destination="ap"),
        "c": CsmaNode("c", hears=frozenset({"ap"}), destination="ap"),
        "ap": CsmaNode("ap", hears=frozenset({"a", "c"}), saturated=False),
    }
    for label, nodes in (("connected", connected), ("hidden", hidden)):
        result = CsmaSimulation(list(nodes.values()),
                                np.random.default_rng(9),
                                frame_slots=50).run(200_000)
        table.add_row(scenario=label, collision_rate=result.collision_rate,
                      utilization=result.channel_utilization)
    return table
