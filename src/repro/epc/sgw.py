"""S-GW: serving gateway — the mobility anchor between eNodeBs and P-GW.

In the control plane it relays session management between MME (S11) and
P-GW (S5), and re-points downlink tunnels on handover (ModifyBearer).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.nas import (
    CreateSessionRequest,
    CreateSessionResponse,
    DeleteSessionRequest,
    ModifyBearerRequest,
    ModifyBearerResponse,
)
from repro.net.addressing import IPv4Address
from repro.simcore.simulator import Simulator


class Sgw(ControlAgent):
    """Serial S-GW agent relaying S11 <-> S5 and handling bearer moves."""

    def __init__(self, sim: Simulator, name: str = "sgw",
                 service_time_s: float = 0.5e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.s11: Optional[ControlChannel] = None
        self.s5: Optional[ControlChannel] = None
        # downlink endpoint per UE: which eNodeB address the tunnel targets
        self.downlink_enb: Dict[str, Optional[IPv4Address]] = {}
        self.bearer_moves = 0

    def connect_mme(self, channel: ControlChannel) -> None:
        """Register the S11 channel toward the MME."""
        self.s11 = channel

    def connect_pgw(self, channel: ControlChannel) -> None:
        """Register the S5 channel toward the P-GW."""
        self.s5 = channel

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if isinstance(payload, CreateSessionRequest):
            self.downlink_enb[payload.ue_id] = payload.enb_address
            self.s5.send(self, payload)           # relay toward P-GW
        elif isinstance(payload, CreateSessionResponse):
            self.s11.send(self, payload)          # relay back to MME
        elif isinstance(payload, DeleteSessionRequest):
            self.downlink_enb.pop(payload.ue_id, None)
            self.s5.send(self, payload)
        elif isinstance(payload, ModifyBearerRequest):
            self._modify_bearer(payload)

    def _modify_bearer(self, request: ModifyBearerRequest) -> None:
        if request.ue_id not in self.downlink_enb:
            self.s11.send(self, ModifyBearerResponse(
                ue_id=request.ue_id, cause="unknown-session"))
            return
        self.downlink_enb[request.ue_id] = request.new_enb_address
        self.bearer_moves += 1
        self.s11.send(self, ModifyBearerResponse(ue_id=request.ue_id))
