"""Bench E11 — multi-hop backhaul sharing (§7 future work)."""

from conftest import emit, once

from repro.experiments import e11_mesh_backhaul


def test_e11_mesh_redundancy(benchmark):
    table = once(benchmark, e11_mesh_backhaul.run)
    emit(table)
    # with the mesh, every site stays reachable until the last uplink dies
    for row in table.rows[:-1]:
        assert row["meshed_reachable_pct"] == 100.0
    # without it, reachability tracks surviving uplinks exactly
    for row in table.rows:
        expected = 100.0 * (6 - row["failed_uplinks"]) / 6
        assert abs(row["isolated_reachable_pct"] - expected) < 1e-6
    # capacity degrades identically (the mesh shares, it does not mint)
    for row in table.rows:
        assert row["meshed_capacity_mbps"] == row["isolated_capacity_mbps"]


def test_e11_aggregation_gain(benchmark):
    single, aggregate = once(benchmark, e11_mesh_backhaul.aggregation_gain)
    print(f"\nE11 aggregation: single uplink {single/1e6:g} Mbps, "
          f"meshed pool {aggregate/1e6:g} Mbps")
    assert aggregate == 4 * single


def test_e11_mesh_links_are_fast(benchmark):
    rate = once(benchmark, e11_mesh_backhaul.mesh_link_rate_bps, 3000.0)
    print(f"\nE11 AP-to-AP mesh link at 3 km: {rate/1e6:.1f} Mbps")
    # elevated fixed radios sustain a useful backhaul-grade rate
    assert rate > 20e6
