"""Ordered parallel map over multiprocessing workers.

The contract that keeps parallel runs byte-identical to serial ones:

* results come back in *item order*, never completion order;
* every task is self-seeding (see :mod:`repro.runner.seeds`) — nothing
  it computes may depend on which worker ran it or when;
* nested calls run serially: a worker that reaches another
  ``parallel_map`` just loops, so cell-level parallelism inside an
  experiment composes with experiment-level fan-out at the CLI without
  daemonic-process errors or oversubscription;
* telemetry ships home: when the parent's
  :data:`~repro.telemetry.hub.HUB` run is active, each task is
  bracketed with a worker-side hub run and its per-simulator telemetry
  (registries, spans, tracers, profilers) is spliced into the parent
  run in task order.

Failure semantics: a task that raises does **not** poison the ordered
merge — the worker catches the exception and ships a failure record
home, and the parent raises :class:`WorkerTaskError` carrying the
original traceback annotated with the task's index and item (which
names its seed), in item order. Pool teardown is guaranteed: the pool
is terminated on any exit path (including ``KeyboardInterrupt``), pool
workers ignore ``SIGINT`` so only the parent decides when to die, and
an ``atexit`` hook reaps any pool still alive at interpreter exit, so
no orphan fork workers survive the parent.

Scheduling note: workers pull one task at a time (``chunksize=1``) and
tasks are submitted longest-first when the caller passes ``costs``, so
one long cell (E6's 30 s-dwell arm) doesn't serialize the tail.

For per-task deadlines, hung/crashed-worker recovery, and bounded
retries, see :mod:`repro.runner.supervisor`, which layers supervision
on the same ordered-map contract.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import signal
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.telemetry.hub import HUB

__all__ = ["ParallelRunner", "WorkerTaskError", "get_jobs", "in_worker",
           "parallel_map", "set_jobs"]

#: Process-wide default fan-out, set once by the CLI's ``--jobs``.
_JOBS = 1

#: True inside a pool worker (set by the pool initializer): nested
#: parallel_map calls run serially instead of forking grandchildren.
_IN_WORKER = False

#: Pools currently mapping, reaped at interpreter exit if still alive.
_ACTIVE_POOLS: set = set()


def _reap_pools() -> None:
    """atexit hook: terminate any pool the parent left running."""
    for pool in list(_ACTIVE_POOLS):
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
    _ACTIVE_POOLS.clear()


atexit.register(_reap_pools)


class WorkerTaskError(RuntimeError):
    """A task raised inside a pool worker.

    Carries the failing task's index, the item it was applied to (whose
    repr names the derived seed for experiment tasks), the original
    exception type name, and the worker-side traceback text.
    """

    def __init__(self, slot: int, item: Any, exc_type: str,
                 traceback_text: str) -> None:
        self.slot = slot
        self.item = item
        self.exc_type = exc_type
        self.traceback_text = traceback_text
        item_repr = repr(item)
        if len(item_repr) > 200:
            item_repr = item_repr[:197] + "..."
        super().__init__(
            f"task {slot} ({item_repr}) raised {exc_type} in a pool "
            f"worker; original traceback:\n{traceback_text}")


class _WorkerFailure:
    """Picklable failure record shipped home instead of a result."""

    __slots__ = ("slot", "exc_type", "traceback_text")

    def __init__(self, slot: int, exc_type: str, traceback_text: str) -> None:
        self.slot = slot
        self.exc_type = exc_type
        self.traceback_text = traceback_text


def set_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (1 = serial)."""
    global _JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _JOBS = int(jobs)


def get_jobs() -> int:
    """The process-wide default worker count."""
    return _JOBS


def in_worker() -> bool:
    """True when executing inside a parallel_map pool worker."""
    return _IN_WORKER


def mark_worker() -> None:
    """Mark this process as a pool worker (nested maps run serially).

    Called by this module's pool initializer and by the supervisor's
    worker main; also drops any hub run inherited from a mid-run parent
    under the fork start method, so the child does not double-collect
    the parent's simulators.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if HUB.active:
        HUB.abort_run()


def _init_worker() -> None:
    """Pool initializer: mark the process and shield it from SIGINT.

    Ctrl-C must interrupt only the parent — the parent then tears the
    pool down deterministically — so workers ignore SIGINT instead of
    dying mid-task with a stack trace race.
    """
    mark_worker()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _invoke(packed):
    """Worker body, plain mode: apply fn to one item."""
    slot, fn, item = packed
    try:
        return fn(item)
    except Exception as exc:
        return _WorkerFailure(slot, type(exc).__name__,
                              traceback.format_exc())


def _invoke_collecting(packed):
    """Worker body, telemetry mode: bracket the task with a hub run.

    Returns ``(slot, blob, timing)``: the slot so the parent can record
    arrivals in completion order, the pickled ``(result, payload)`` pair,
    and a wall-clock timing dict for runner-lifecycle tracing. Pickling
    happens *here*, timed and sized, so the pipe carries one cheap bytes
    object and the serialize cost is measured exactly once where it is
    paid; ``time.monotonic`` is CLOCK_MONOTONIC on Linux, comparable
    across forked processes, so the parent can compute queue-wait and
    ship-home latencies from these stamps.
    """
    slot, fn, item, profile, trace = packed
    if HUB.active:  # inherited via fork from a mid-run parent
        HUB.abort_run()
    HUB.start_run(profile=profile, trace=trace)
    started_at = time.monotonic()
    try:
        result = fn(item)
    except Exception as exc:
        exec_s = time.monotonic() - started_at
        HUB.abort_run()
        pair = (_WorkerFailure(slot, type(exc).__name__,
                               traceback.format_exc()), None)
    except BaseException:
        HUB.abort_run()
        raise
    else:
        exec_s = time.monotonic() - started_at
        pair = (result, HUB.export_worker_run())
    t0 = time.monotonic()
    blob = pickle.dumps(pair, protocol=pickle.HIGHEST_PROTOCOL)
    timing = {"pid": os.getpid(), "started_at": started_at,
              "exec_s": exec_s,
              "serialize_s": time.monotonic() - t0,
              "serialize_bytes": len(blob),
              "finished_at": time.monotonic()}
    return slot, blob, timing


def _pool_context():
    """Prefer fork (cheap, Linux default); fall back to the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _raise_first_failure(by_item: List[Any], items: List[Any],
                         collecting: bool) -> None:
    """Raise WorkerTaskError for the earliest failed task, if any."""
    for slot, value in enumerate(by_item):
        candidate = value[0] if collecting and isinstance(value, tuple) \
            else value
        if isinstance(candidate, _WorkerFailure):
            raise WorkerTaskError(candidate.slot, items[candidate.slot],
                                  candidate.exc_type,
                                  candidate.traceback_text)


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any],
                 jobs: Optional[int] = None,
                 costs: Optional[Sequence[float]] = None) -> List[Any]:
    """Map ``fn`` over ``items`` on worker processes, results in item order.

    Args:
        fn: a picklable (module-level) single-argument callable.
        items: task descriptors, each picklable.
        jobs: worker count; defaults to :func:`get_jobs`. ``1`` (or a
            single item, or a nested call inside a worker) runs a plain
            serial loop — the reference behavior parallel runs must match.
        costs: optional per-item cost hints; when given, tasks are
            *submitted* longest-first to minimize makespan, but results
            still come back in item order.

    Raises:
        WorkerTaskError: a task raised in a worker; the error carries
            the original traceback annotated with the task index and
            item, and the pool is torn down before it propagates.

    Telemetry: with an active HUB run, tasks are bracketed in the worker
    and their collected telemetry is absorbed into the parent run in
    item order, so exports and merged profiles line up with serial runs.
    """
    items = list(items)
    n = jobs if jobs is not None else _JOBS
    if n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    if n == 1 or _IN_WORKER or len(items) < 2:
        return [fn(item) for item in items]

    order = list(range(len(items)))
    if costs is not None:
        if len(costs) != len(items):
            raise ValueError("costs must align with items")
        order.sort(key=lambda i: -costs[i])

    collecting = HUB.active
    if collecting:
        packed = [(i, fn, items[i], HUB.profiling, HUB.tracing)
                  for i in order]
        worker = _invoke_collecting
    else:
        packed = [(i, fn, items[i]) for i in order]
        worker = _invoke

    ctx = _pool_context()
    lifecycle = HUB.lifecycle if collecting else None
    map_started = time.monotonic()
    pool = ctx.Pool(min(n, len(items)), initializer=_init_worker)
    fork_s = time.monotonic() - map_started
    _ACTIVE_POOLS.add(pool)
    by_item: List[Any] = [None] * len(items)
    record = None
    tasks = {}
    try:
        with pool:
            if not collecting:
                raw = pool.map(worker, packed, chunksize=1)
                # undo the submission reordering
                for slot, value in zip(order, raw):
                    by_item[slot] = value
            else:
                # completion-order arrivals so ship-home latency is
                # measured per task; slots undo the reordering
                if lifecycle is not None:
                    record = lifecycle.begin_map("pool",
                                                 min(n, len(items)))
                    record.started_at = map_started
                    record.fork_s = fork_s
                for slot, blob, timing in pool.imap_unordered(
                        worker, packed, chunksize=1):
                    received = time.monotonic()
                    by_item[slot] = pickle.loads(blob)
                    if record is not None:
                        task = lifecycle.record_task(
                            record, slot, str(items[slot])[:80],
                            timing["pid"],
                            queue_wait_s=max(
                                0.0, timing["started_at"] - map_started),
                            exec_s=timing["exec_s"],
                            serialize_s=timing["serialize_s"],
                            serialize_bytes=timing["serialize_bytes"],
                            ship_s=max(
                                0.0, received - timing["finished_at"]))
                        # unpickling the blob is part of result merging
                        task.merge_s = time.monotonic() - received
                        tasks[slot] = task
    finally:
        # ``with`` terminated the pool on any exit path (incl. SIGINT in
        # the parent); make sure the workers are fully reaped before we
        # hand control back, and drop the atexit reference.
        pool.join()
        _ACTIVE_POOLS.discard(pool)

    _raise_first_failure(by_item, items, collecting)

    if not collecting:
        return by_item
    results = []
    for slot, (result, payload) in enumerate(by_item):
        t0 = time.monotonic()
        HUB.absorb_worker_run(payload)
        task = tasks.get(slot)
        if task is not None:
            task.merge_s += time.monotonic() - t0
        results.append(result)
    if record is not None:
        lifecycle.finish_map(record)
    return results


class ParallelRunner:
    """A configured fan-out: the object the CLI and harnesses drive.

    Thin and deliberate: holds a job count, exposes the same ordered
    map as :func:`parallel_map`, and reports whether it actually fans
    out (the CLI uses that to pick experiment- vs cell-level splits).
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else get_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def parallel(self) -> bool:
        """True when this runner will actually use worker processes."""
        return self.jobs > 1 and not _IN_WORKER

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            costs: Optional[Sequence[float]] = None) -> List[Any]:
        """Ordered map at this runner's job count (see parallel_map)."""
        return parallel_map(fn, items, jobs=self.jobs, costs=costs)

    def __repr__(self) -> str:
        return f"<ParallelRunner jobs={self.jobs}>"
