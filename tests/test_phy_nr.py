"""Unit tests for the 5G-NR primitives (repro.phy.nr)."""

import pytest

from repro.phy.mcs import lte_efficiency_for_sinr
from repro.phy.nr import (
    NR_BANDS,
    NR_MCS_TABLE,
    NR_NUMEROLOGY,
    Numerology,
    air_interface_latency_s,
    beamforming_gain_db,
    nr_efficiency_for_sinr,
)


# -- numerologies -------------------------------------------------------------

def test_numerology_scs_ladder():
    assert Numerology(0).scs_khz == 15
    assert Numerology(1).scs_khz == 30
    assert Numerology(3).scs_khz == 120


def test_numerology_slot_duration():
    assert Numerology(0).slot_duration_s == 1e-3
    assert Numerology(2).slot_duration_s == 0.25e-3
    assert Numerology(2).slots_per_subframe == 4


def test_numerology_prb_bandwidth():
    # mu=0: 12 x 15 kHz = 180 kHz, the LTE PRB
    assert Numerology(0).prb_bandwidth_hz == pytest.approx(180e3)
    assert Numerology(1).prb_bandwidth_hz == pytest.approx(360e3)


def test_numerology_validation():
    with pytest.raises(ValueError):
        Numerology(5)
    with pytest.raises(ValueError):
        Numerology(-1)


# -- bands / tables --------------------------------------------------------------

def test_nr_bands_cover_both_layers():
    assert NR_BANDS["nr-n28"].is_sub_ghz
    assert not NR_BANDS["nr-n78"].is_sub_ghz
    assert NR_BANDS["nr-n78"].bandwidth_hz == 100e6
    assert NR_NUMEROLOGY["nr-n78"].mu == 1


def test_nr_table_extends_lte_monotonically():
    effs = [e.efficiency_bps_hz for e in NR_MCS_TABLE]
    thresholds = [e.min_sinr_db for e in NR_MCS_TABLE]
    assert effs == sorted(effs)
    assert thresholds == sorted(thresholds)
    assert effs[-1] > 7.0  # 256QAM peak


def test_nr_efficiency_matches_lte_below_256qam():
    for sinr in (-10, 0, 10, 20):
        assert nr_efficiency_for_sinr(sinr) == lte_efficiency_for_sinr(sinr)


def test_nr_efficiency_beats_lte_at_high_sinr():
    assert nr_efficiency_for_sinr(30) > lte_efficiency_for_sinr(30)
    assert nr_efficiency_for_sinr(30) == pytest.approx(7.4063)


# -- beamforming / latency ------------------------------------------------------------

def test_beamforming_gain_log_law():
    assert beamforming_gain_db(1) == 0.0
    assert beamforming_gain_db(10) == pytest.approx(10.0)
    assert beamforming_gain_db(64) == pytest.approx(18.06, abs=0.01)
    with pytest.raises(ValueError):
        beamforming_gain_db(0)


def test_air_latency_scales_with_numerology():
    assert air_interface_latency_s(Numerology(0)) == pytest.approx(4e-3)
    assert air_interface_latency_s(Numerology(3)) == pytest.approx(0.5e-3)
    with pytest.raises(ValueError):
        air_interface_latency_s(Numerology(0), scheduling_slots=0)
