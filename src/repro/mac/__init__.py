"""Medium access control: LTE schedulers, timing advance, WiFi CSMA/CA.

LTE's MAC is *scheduled*: the eNodeB assigns PRBs per TTI, so overlapping
cells only interfere if their PRB allocations collide — coordination can
eliminate contention entirely. WiFi's MAC is *contended*: DCF CSMA/CA
resolves access by carrier sensing and random backoff, which degrades
with load and fails under hidden terminals. Both are built here and
compared head-to-head in E5 and E8.
"""

from repro.mac.arena import UeArena, batch_default, batch_mode, set_batch_default
from repro.mac.csma import CsmaNode, CsmaSimulation, bianchi_throughput
from repro.mac.schedulers import (
    LteScheduler,
    MaxCiScheduler,
    ProportionalFairScheduler,
    QosAwareScheduler,
    RoundRobinScheduler,
    SchedulableUser,
)
from repro.mac.uplink import (
    ContiguousUplinkScheduler,
    contiguity_loss,
    contiguous_runs,
)
from repro.mac.timing import (
    LTE_MAX_CELL_RANGE_M,
    WIFI_DEFAULT_ACK_RANGE_M,
    lte_timing_advance_steps,
    max_range_supported_m,
    propagation_delay_s,
)

__all__ = [
    "UeArena", "batch_default", "batch_mode", "set_batch_default",
    "CsmaNode", "CsmaSimulation", "bianchi_throughput",
    "LteScheduler", "RoundRobinScheduler", "ProportionalFairScheduler",
    "MaxCiScheduler", "QosAwareScheduler", "SchedulableUser",
    "ContiguousUplinkScheduler", "contiguity_loss", "contiguous_runs",
    "LTE_MAX_CELL_RANGE_M", "WIFI_DEFAULT_ACK_RANGE_M",
    "lte_timing_advance_steps", "max_range_supported_m",
    "propagation_delay_s",
]
