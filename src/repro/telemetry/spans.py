"""Causal spans on the simulated clock.

A span times one logical procedure — an attach, a handover, a paging
cycle, a lease renewal — from begin to end *in simulated time*, across
however many event callbacks it takes. Spans carry ids and parent ids,
so nested procedures form a causal tree that exporters can reconstruct.

Two usage shapes, matching the two shapes of simulation code:

* synchronous blocks use the context manager and get implicit
  parenting from the enclosing span::

      with sim.span("handover.decide", ue=ue_id):
          ...  # child spans opened here are parented automatically

* event-driven procedures (the common case: an attach is a chain of
  callbacks) hold the span handle across steps::

      span = sim.telemetry.spans.begin("epc.attach", ue=ue_id)
      ...                       # many events later
      span.end(status="ok")

Ending a span records its duration into the metrics histogram
``span.<name>.duration_s`` labelled by status, so procedure latency
distributions fall out of the registry without separate bookkeeping.
Instantaneous occurrences (a fault firing) are zero-duration spans via
:meth:`SpanTracker.event`.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry

__all__ = ["Span", "SpanTracker"]


def _frozen_clock() -> float:
    """Clock of an unpickled tracker: it only ever reports history."""
    return 0.0


class Span:
    """One timed procedure instance."""

    __slots__ = ("_tracker", "name", "span_id", "parent_id", "start_s",
                 "end_s", "status", "attrs")

    def __init__(self, tracker: "SpanTracker", name: str, span_id: int,
                 parent_id: Optional[int], start_s: float,
                 attrs: Dict[str, Any]) -> None:
        self._tracker = tracker
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.status = "open"
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        """True once :meth:`end` has run."""
        return self.end_s is not None

    @property
    def duration_s(self) -> Optional[float]:
        """Simulated duration, or None while still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def end(self, status: str = "ok", **attrs: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if self.end_s is None:
            self.attrs.update(attrs)
            self._tracker._finish(self, status)
        return self

    def annotate(self, **attrs: Any) -> "Span":
        """Attach extra attributes to an open span."""
        self.attrs.update(attrs)
        return self

    # -- context-manager shape (synchronous nesting) -----------------------

    def __enter__(self) -> "Span":
        self._tracker._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracker._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.end(status="error" if exc_type is not None else "ok")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable record for exporters."""
        return {"type": "span", "name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "start_s": self.start_s,
                "end_s": self.end_s, "duration_s": self.duration_s,
                "status": self.status, "attrs": dict(self.attrs)}

    def __repr__(self) -> str:
        state = (f"dur={self.duration_s:.6f}s status={self.status}"
                 if self.finished else "open")
        return f"<Span #{self.span_id} {self.name} {state}>"


class SpanTracker:
    """Creates spans on a clock, keeps the finished ones, feeds metrics.

    Args:
        clock: zero-arg callable returning the current simulated time.
        metrics: registry receiving ``span.<name>.duration_s`` histograms
            (None disables the metric mirror).
        max_finished: ring-buffer bound on retained finished spans.
    """

    def __init__(self, clock: Callable[[], float],
                 metrics: Optional[MetricsRegistry] = None,
                 max_finished: int = 100_000) -> None:
        if max_finished < 1:
            raise ValueError("need room for at least one finished span")
        self._clock = clock
        self._metrics = metrics
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._open: Dict[int, Span] = {}
        self.finished: Deque[Span] = deque(maxlen=max_finished)
        self.started = 0
        self.ended = 0

    # -- pickling ----------------------------------------------------------
    #
    # Parallel workers ship finished trackers back to the parent hub
    # (see repro.runner.parallel). The clock is a closure over a live
    # simulator, so it is dropped in transit and replaced with a frozen
    # zero clock — shipped trackers are archives, not live recorders.

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_clock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = _frozen_clock

    # -- creation ----------------------------------------------------------

    def begin(self, name: str, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a span; parent defaults to the innermost ``with`` span."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(self, name, next(self._ids),
                    parent.span_id if parent is not None else None,
                    self._clock(), attrs)
        self._open[span.span_id] = span
        self.started += 1
        return span

    def span(self, name: str, **attrs: Any) -> Span:
        """A span intended for ``with`` use (same object as begin())."""
        return self.begin(name, **attrs)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration span marking an instantaneous occurrence."""
        return self.begin(name, **attrs).end(status="event")

    # -- lifecycle ---------------------------------------------------------

    def _finish(self, span: Span, status: str) -> None:
        span.end_s = self._clock()
        span.status = status
        self._open.pop(span.span_id, None)
        self.finished.append(span)
        self.ended += 1
        if self._metrics is not None:
            self._metrics.histogram(f"span.{span.name}.duration_s",
                                    status=status).observe(span.duration_s)

    def end_all_open(self, status: str = "aborted") -> int:
        """Close every open span (crash teardown); returns the count."""
        open_now = list(self._open.values())
        for span in open_now:
            span.end(status=status)
        return len(open_now)

    # -- queries -----------------------------------------------------------

    @property
    def open_count(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended, in begin order (post-mortems)."""
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans (optionally one procedure), in end order."""
        return [s for s in self.finished if name is None or s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        """Finished direct children of ``span`` (causal tree walk)."""
        return [s for s in self.finished if s.parent_id == span.span_id]

    def durations_s(self, name: str) -> List[float]:
        """All finished durations of one procedure name."""
        return [s.duration_s for s in self.finished if s.name == name]
