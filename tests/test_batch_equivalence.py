"""Batch TTI engine: every experiment table is byte-identical.

The batch engine's acceptance contract is stronger than "numerically
close": with ``REPRO_BATCH_TTI=1`` every rendered experiment table must
match the scalar reference **byte for byte** — same floats, same
rounding, same row order. This reuses the small-but-real workloads from
``test_parallel_determinism.CASES`` (all 17 experiments) and runs each
once per TTI path.

Workers are forked, so ``batch_mode`` in the parent governs ``--jobs``
runs too; a subset re-checks batch-on against scalar-serial across the
real multiprocessing pool.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.mac import batch_mode

from tests.test_parallel_determinism import CASES, _render, _run_at

#: TTI-heavy experiments worth re-checking across the worker pool.
JOBS_SUBSET = [c for c in CASES if c[0] in ("E5", "E7", "E17", "E18")]


def _run(exp_id, kwargs, batch):
    with batch_mode(batch):
        return _render(ALL_EXPERIMENTS[exp_id].run(**kwargs))


@pytest.mark.parametrize("exp_id,kwargs", CASES,
                         ids=[c[0] for c in CASES])
def test_batch_tables_byte_identical(exp_id, kwargs):
    assert _run(exp_id, kwargs, True) == _run(exp_id, kwargs, False)


@pytest.mark.parametrize("exp_id,kwargs", JOBS_SUBSET,
                         ids=[c[0] for c in JOBS_SUBSET])
def test_batch_tables_byte_identical_at_jobs_4(exp_id, kwargs):
    with batch_mode(True):
        parallel_batch = _run_at(exp_id, kwargs, 4)
    with batch_mode(False):
        serial_scalar = _run_at(exp_id, kwargs, 1)
    assert parallel_batch == serial_scalar
