"""Tests for benchmarks/compare.py (the bench-report diff tool)."""

import json
import os
import subprocess
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))

from compare import (attribute, attribution_rows, compare_rows,  # noqa: E402
                     load_report, render, render_parallel)

REPO = os.path.join(os.path.dirname(__file__), "..")


def _report(**cells):
    return {"date": "2026-08-06", "calibration_s": 0.05,
            "results": {name: {"wall_s": wall, "normalized": norm,
                               "heap_hwm": hwm}
                        for name, (wall, norm, hwm) in cells.items()}}


def test_compare_rows_ratio_and_speedup():
    old = _report(F1=(0.5, 10.0, 8), E7=(0.25, 5.0, 300))
    new = _report(F1=(0.13, 2.5, 8), E7=(0.14, 2.5, 256))
    rows = {r["name"]: r for r in compare_rows(old, new)}
    assert rows["F1"]["ratio"] == pytest.approx(0.25)
    assert rows["F1"]["speedup"] == pytest.approx(4.0)
    assert rows["E7"]["speedup"] == pytest.approx(2.0)
    assert rows["E7"]["old_hwm"] == 300 and rows["E7"]["new_hwm"] == 256


def test_compare_rows_handles_one_sided_cells():
    old = _report(F1=(0.5, 10.0, 8), retired=(0.1, 2.0, 0))
    new = _report(F1=(0.5, 10.0, 8), added=(0.2, 4.0, 10))
    rows = {r["name"]: r for r in compare_rows(old, new)}
    assert rows["retired"]["new"] is None
    assert rows["added"]["old"] is None
    assert rows["retired"]["ratio"] is None
    assert rows["added"]["ratio"] is None
    text = render(list(rows.values()), "old.json", "new.json")
    assert text.count("only in one report") == 2


def test_load_report_rejects_non_bench_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        load_report(str(path))


def _prof(*sites):
    return [{"site": site, "calls": calls, "wall_ms": ms,
             "frac": 0.5} for site, calls, ms in sites]


def test_attribution_names_the_site_that_moved():
    old = _report(E7=(0.25, 5.0, 300))
    new = _report(E7=(0.50, 10.0, 300))
    old["results"]["E7"]["profile"] = _prof(
        ("repro.epc.agents.ControlAgent._finish", 100, 80.0),
        ("repro.net.links.Link.send", 50, 20.0))
    new["results"]["E7"]["profile"] = _prof(
        ("repro.epc.agents.ControlAgent._finish", 100, 200.0),
        ("repro.epc.ue.UserEquipment.start_attach", 10, 5.0))
    rows = compare_rows(old, new)
    tables = attribute(old, new, rows, threshold=0.25)
    assert list(tables) == ["E7"]
    sites = tables["E7"]
    # biggest mover first; vanished/appeared sites present at 0 ms
    assert sites[0]["site"] == "repro.epc.agents.ControlAgent._finish"
    assert sites[0]["delta_ms"] == pytest.approx(120.0)
    by_site = {s["site"]: s for s in sites}
    assert by_site["repro.net.links.Link.send"]["new_ms"] == 0.0
    assert by_site["repro.epc.ue.UserEquipment.start_attach"]["old_ms"] == 0.0


def test_attribution_skips_cells_inside_the_band_and_unprofiled():
    old = _report(F1=(0.5, 10.0, 8), E7=(0.25, 5.0, 300))
    new = _report(F1=(0.5, 10.5, 8), E7=(0.50, 10.0, 300))
    old["results"]["F1"]["profile"] = _prof(("a.b", 1, 1.0))
    new["results"]["F1"]["profile"] = _prof(("a.b", 1, 1.0))
    # E7 doubled but has no profile tables -> no attribution either way
    tables = attribute(old, new, compare_rows(old, new), threshold=0.25)
    assert tables == {}
    assert attribution_rows(old["results"]["E7"],
                            new["results"]["E7"]) == []


def test_parallel_speedup_not_judged_when_cpus_short():
    old = _report(F1=(0.5, 10.0, 8))
    new = _report(F1=(0.5, 10.0, 8))
    new["parallel"] = {"suite": ["F1"], "jobs": 4, "cpus": 1,
                      "serial_s": 2.0, "parallel_s": 2.7, "speedup": 0.74}
    text = render_parallel(old, new)
    assert "speedup not comparable: 1 cpus" in text
    new["parallel"]["cpus"] = 8
    assert "not comparable" not in render_parallel(old, new)


def test_cli_attribution_out(tmp_path):
    old = _report(E7=(0.25, 5.0, 300))
    new = _report(E7=(0.50, 10.0, 300))
    old["results"]["E7"]["profile"] = _prof(("mod.slow", 10, 50.0))
    new["results"]["E7"]["profile"] = _prof(("mod.slow", 10, 150.0))
    old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
    attr_path = tmp_path / "attr.json"
    old_path.write_text(json.dumps(old))
    new_path.write_text(json.dumps(new))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "benchmarks", "compare.py"),
         str(old_path), str(new_path), "--attribution-out", str(attr_path)],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "attribution" in proc.stdout and "mod.slow" in proc.stdout
    payload = json.loads(attr_path.read_text())
    assert payload["cells"]["E7"][0]["delta_ms"] == pytest.approx(100.0)


def test_cli_round_trip(tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_report(F1=(0.5, 10.0, 8))))
    new.write_text(json.dumps(_report(F1=(0.25, 5.0, 8))))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "benchmarks", "compare.py"),
         str(old), str(new)],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "F1" in proc.stdout and "2.00" in proc.stdout
    assert "1 faster" in proc.stdout
