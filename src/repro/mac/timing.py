"""Timing advance and range limits.

§3.2: "LTE's scheduler also handles longer links by explicitly
compensating for propagation delay."

LTE uplink symbols must arrive time-aligned at the eNodeB; the network
measures round-trip delay during random access and commands each UE to
advance its transmissions. PRACH format 0 supports TA values covering
~100 km; extended formats go further. WiFi has no such mechanism: the
transmitter expects an ACK within a fixed SIFS+slot window, so beyond
a few km ACKs arrive late and every frame retries — the link dies from
*timing*, not SNR. (Long-distance WiFi exists only via non-standard
ACK-timeout tuning, i.e. "expensive custom hardware" in the paper's
terms.)
"""

from __future__ import annotations

SPEED_OF_LIGHT_M_S = 299_792_458.0

#: LTE TA step: 16 Ts = 16 / (15000 * 2048) s, ~0.52 us, ~78 m of range each.
LTE_TA_STEP_S = 16.0 / (15000.0 * 2048.0)

#: Max TA index for PRACH format 0 (11 bits): covers ~100 km cell radius.
LTE_MAX_TA_STEPS = 1282
LTE_MAX_CELL_RANGE_M = 100_000.0

#: Stock 802.11 ACK timing tolerates roughly this one-way distance before
#: the slot/SIFS budget is exceeded (802.11-2012 aSlotTime coverage).
WIFI_DEFAULT_ACK_RANGE_M = 2_700.0


def propagation_delay_s(distance_m: float) -> float:
    """One-way free-space propagation delay."""
    if distance_m < 0:
        raise ValueError("negative distance")
    return distance_m / SPEED_OF_LIGHT_M_S


def lte_timing_advance_steps(distance_m: float) -> int:
    """The TA command (in 16-Ts steps) for a UE at ``distance_m``.

    Raises ValueError beyond the PRACH format-0 limit — the UE simply
    cannot random-access such a cell.
    """
    if distance_m < 0:
        raise ValueError("negative distance")
    round_trip = 2.0 * propagation_delay_s(distance_m)
    steps = round(round_trip / LTE_TA_STEP_S)
    if steps > LTE_MAX_TA_STEPS:
        raise ValueError(
            f"distance {distance_m:.0f} m exceeds LTE TA range "
            f"({LTE_MAX_CELL_RANGE_M:.0f} m)")
    return steps


def max_range_supported_m(technology: str) -> float:
    """Protocol-timing range limit for ``"lte"`` or ``"wifi"``.

    This is the *MAC* limit; the link budget may die sooner. E3 reports
    min(timing limit, link-budget limit) per technology.
    """
    tech = technology.lower()
    if tech == "lte":
        return LTE_MAX_CELL_RANGE_M
    if tech == "wifi":
        return WIFI_DEFAULT_ACK_RANGE_M
    raise ValueError(f"unknown technology {technology!r} (want 'lte' or 'wifi')")
