"""The run profiler: where did this simulation spend its wall-clock time?

Wraps the :class:`~repro.simcore.simulator.Simulator` heap loop (the
simulator checks ``sim.profiler`` once per dispatched event) and
attributes real elapsed time and event counts to *callback sites* — the
``module.qualname`` of each scheduled function. Trace categories emitted
during the run are tallied too, so "how many ``drop`` events" and "which
callbacks are hot" come out of the same run.

Profiling is opt-in because it pays one ``perf_counter`` pair per event;
everything else in the telemetry layer stays enabled always. Attaching
or detaching a profiler never changes simulation *results* — it observes
dispatch, it does not alter it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.tables import ResultTable

__all__ = ["RunProfiler", "SiteStats"]


class SiteStats:
    """Accumulated cost of one callback site."""

    __slots__ = ("site", "calls", "wall_s")

    def __init__(self, site: str) -> None:
        self.site = site
        self.calls = 0
        self.wall_s = 0.0

    def __repr__(self) -> str:
        return f"<SiteStats {self.site} calls={self.calls} wall={self.wall_s:.4f}s>"


class RunProfiler:
    """Per-callback-site wall-clock attribution for a simulator run."""

    def __init__(self) -> None:
        self.sites: Dict[str, SiteStats] = {}
        self.category_counts: Dict[str, int] = {}
        self.events = 0
        self.wall_s = 0.0
        self._started_at: Optional[float] = None

    # -- hooks called by the Simulator ------------------------------------

    def run_callback(self, fn: Callable, args: tuple) -> None:
        """Dispatch one event under timing (replaces ``fn(*args)``)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        t0 = time.perf_counter()
        try:
            fn(*args)
        finally:
            elapsed = time.perf_counter() - t0
            site = f"{fn.__module__}.{fn.__qualname__}"
            stats = self.sites.get(site)
            if stats is None:
                stats = self.sites[site] = SiteStats(site)
            stats.calls += 1
            stats.wall_s += elapsed
            self.events += 1
            self.wall_s += elapsed

    def note_category(self, category: str) -> None:
        """Count one trace emission (called from ``Simulator.trace``)."""
        self.category_counts[category] = \
            self.category_counts.get(category, 0) + 1

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "RunProfiler") -> None:
        """Fold another profiler's tallies into this one (multi-sim runs)."""
        for site, stats in other.sites.items():
            mine = self.sites.get(site)
            if mine is None:
                mine = self.sites[site] = SiteStats(site)
            mine.calls += stats.calls
            mine.wall_s += stats.wall_s
        for category, count in other.category_counts.items():
            self.category_counts[category] = \
                self.category_counts.get(category, 0) + count
        self.events += other.events
        self.wall_s += other.wall_s

    # -- reporting ---------------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        """Dispatched events per wall-clock second spent in callbacks."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def top_sites(self, n: int = 10) -> List[SiteStats]:
        """The ``n`` costliest callback sites by wall time."""
        return sorted(self.sites.values(),
                      key=lambda s: (-s.wall_s, s.site))[:n]

    def hot_path_table(self, n: int = 10) -> ResultTable:
        """Top-N hot paths as a printable table."""
        table = ResultTable(
            f"Profile: top-{n} hot paths "
            f"({self.events} events, {self.events_per_sec:,.0f} events/s)",
            ["callback_site", "calls", "wall_ms", "wall_frac", "us_per_call"])
        for stats in self.top_sites(n):
            table.add_row(
                callback_site=stats.site, calls=stats.calls,
                wall_ms=stats.wall_s * 1e3,
                wall_frac=(stats.wall_s / self.wall_s if self.wall_s else 0.0),
                us_per_call=(stats.wall_s / stats.calls * 1e6
                             if stats.calls else 0.0))
        return table

    def category_table(self) -> ResultTable:
        """Trace-category counts as a printable table."""
        table = ResultTable("Profile: trace events by category",
                            ["category", "events"])
        for category, count in sorted(self.category_counts.items(),
                                      key=lambda kv: (-kv[1], kv[0])):
            table.add_row(category=category, events=count)
        return table

    def rows(self) -> List[Dict[str, object]]:
        """Machine-readable site rows for exporters."""
        return [{"site": s.site, "calls": s.calls, "wall_s": s.wall_s}
                for s in self.top_sites(len(self.sites))]

    def top_rows(self, n: int = 12) -> List[Dict[str, object]]:
        """Top-N site rows with wall fraction — the bench capture shape.

        ``benchmarks/bench_runner.py`` stores these per cell in
        ``BENCH_*.json`` so ``compare.py`` can attribute a normalized
        delta to the callback sites that moved.
        """
        total = self.wall_s
        return [{"site": s.site, "calls": s.calls,
                 "wall_ms": round(s.wall_s * 1e3, 3),
                 "frac": round(s.wall_s / total, 4) if total else 0.0}
                for s in self.top_sites(n)]

    def __repr__(self) -> str:
        return (f"<RunProfiler events={self.events} "
                f"sites={len(self.sites)} wall={self.wall_s:.3f}s>")
