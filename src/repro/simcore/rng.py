"""Deterministic, namespaced random streams.

A simulation touches randomness from many components (shadowing, traffic
arrivals, mobility waypoints, backoff draws…). Drawing them all from one
generator makes results depend on event interleaving; instead each
component asks for a *named* stream, and each stream is seeded from the
root seed plus a stable hash of the name. Two runs with the same seed and
topology then produce identical results regardless of the order in which
components happen to draw.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the root seed with a CRC of the name, so it
        is stable across processes and Python versions (unlike ``hash``).
        """
        gen = self._streams.get(name)
        if gen is None:
            derived = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            gen = np.random.default_rng(derived)
            self._streams[name] = gen
        return gen

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are all independent of this one's.

        Used when one experiment spawns several trials: each trial forks
        with its trial index so trials are independent but reproducible.
        """
        return RngRegistry(seed=self.seed * 1_000_003 + salt + 1)

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"
