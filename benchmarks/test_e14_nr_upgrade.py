"""Bench E14 — the 5G-NR upgrade path for dLTE (§7 future work)."""

from conftest import emit, once

from repro.experiments import e14_nr_upgrade


def test_e14_rate_vs_distance(benchmark):
    table = once(benchmark, e14_nr_upgrade.run)
    emit(table)
    rows = {row["arm"]: row for row in table.rows}
    lte = rows["LTE band 5 (10 MHz)"]
    n28 = rows["NR n28 (20 MHz)"]
    n78 = rows["NR n78 (100 MHz, no BF)"]
    n78bf = rows["NR n78 + 64-el beamforming"]
    # the like-for-like upgrade: n28 doubles LTE where SINR is plentiful,
    # and still wins at the edge (where its doubled noise bandwidth eats
    # part of the channel-width gain)
    for col in ("d250m", "d4000m"):
        assert n28[col] >= 2 * lte[col] * 0.9
    assert n28["d16000m"] > 1.4 * lte["d16000m"]
    # raw mid-band dies where the coverage layers still deliver
    assert n78["d16000m"] == 0.0
    assert lte["d16000m"] > 0 and n28["d16000m"] > 0
    # beamforming is what rescues mid-band at range
    assert n78bf["d16000m"] > 100.0
    # near the mast, the 100 MHz channel is an order of magnitude up
    assert n78bf["d250m"] > 10 * lte["d250m"]


def test_e14_latency_ladder(benchmark):
    table = once(benchmark, e14_nr_upgrade.latency_ladder)
    emit(table)
    latencies = table.column("air_latency_ms")
    # LTE == mu0, then halving per numerology step
    assert latencies[0] == latencies[1] == 4.0
    for a, b in zip(latencies[1:], latencies[2:]):
        assert b == a / 2


def test_e14_range_summary(benchmark):
    table = once(benchmark, e14_nr_upgrade.range_summary)
    emit(table)
    usable = {row["arm"]: row["usable_km"] for row in table.rows}
    # beamforming triples raw mid-band reach
    assert (usable["NR n78 + 64-el beamforming"]
            > 3 * usable["NR n78 (100 MHz, no BF)"])
    # the sub-GHz layers remain the kings of area coverage
    assert usable["LTE band 5 (10 MHz)"] > 50
    assert usable["NR n28 (20 MHz)"] > 50
