#!/usr/bin/env python
"""Quickstart: build a rural town, serve it four ways, compare.

Builds the same town under all four architectures of the paper's
Table 1 and prints each network's report: attach latency, per-user
downlink, path to an Internet service, and control-plane cost.

Run:  python examples/quickstart.py
"""

from repro import (
    CentralizedLTENetwork,
    DLTENetwork,
    PrivateLTENetwork,
    RuralTown,
    WiFiNetwork,
)


def main() -> None:
    town = RuralTown(radius_m=1500, n_ues=16, n_aps=2, seed=42)
    print(f"Scenario: a {town.radius_m/1000:g} km town, "
          f"{town.n_ues} users, {town.n_aps} AP sites, "
          f"{town.backhaul_delay_s*1e3:g} ms rural backhaul\n")

    for architecture in (DLTENetwork, CentralizedLTENetwork,
                         WiFiNetwork, PrivateLTENetwork):
        network = architecture.build(town, seed=42)
        report = network.run(duration_s=10.0)
        print(report.summary())
        print()

    print("The dLTE rows to notice: attach in one air round trip plus the")
    print("local stub, a 4-hop WiFi-like path to the Internet (no EPC")
    print("triangle, no GTP overhead), and a few hundred bytes of X2")
    print("coordination instead of kilobytes of S1 signaling.")


if __name__ == "__main__":
    main()
