"""NAS and control-plane message definitions.

Plain dataclasses, one per procedure step. Each carries the fields the
receiving state machine actually checks, so tests can assert on exact
protocol content. Byte sizes are representative over-the-wire weights
used for control-load accounting (E7, E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addressing import IPv4Address


@dataclass
class NasMessage:
    """Base for all control messages; ``ue_id`` threads the procedure."""

    ue_id: str
    size_bytes: int = 100


@dataclass
class AttachRequest(NasMessage):
    """UE -> MME: initial attach with identity."""

    imsi: str = ""
    size_bytes: int = 120


@dataclass
class AuthenticationRequest(NasMessage):
    """MME -> UE: the AKA challenge.

    ``sqn`` models the sequence number the real AUTN carries (as
    SQN xor AK): the UE recovers it, verifies AUTN against it, and
    enforces freshness (sqn >= its highest seen) — which is what lets a
    client attach to a *different* dLTE stub whose counter is behind.
    """

    rand: bytes = b""
    autn: bytes = b""
    sqn: int = 0
    size_bytes: int = 140


@dataclass
class AuthenticationResponse(NasMessage):
    """UE -> MME: RES proving possession of K."""

    res: bytes = b""
    size_bytes: int = 120


@dataclass
class AuthenticationReject(NasMessage):
    """MME -> UE: RES mismatch or unknown subscriber."""

    cause: str = "auth-failure"
    size_bytes: int = 90


@dataclass
class SecurityModeCommand(NasMessage):
    """MME -> UE: activate the NAS security context."""

    size_bytes: int = 110


@dataclass
class SecurityModeComplete(NasMessage):
    """UE -> MME: security context active."""

    size_bytes: int = 90


@dataclass
class AttachAccept(NasMessage):
    """MME -> UE: attach granted, bearer established, address assigned."""

    ue_address: Optional[IPv4Address] = None
    guti: str = ""
    size_bytes: int = 180


@dataclass
class AttachComplete(NasMessage):
    """UE -> MME: procedure done."""

    size_bytes: int = 90


@dataclass
class AttachReject(NasMessage):
    """MME -> UE: attach refused.

    ``backoff_s`` models the T3346 congestion timer: when the cause is
    ``congestion`` the network assigns a minimum wait before the UE may
    retry, so a rejected flash crowd spreads out instead of hammering.
    Zero means no server-assigned backoff (ordinary reject).
    """

    cause: str = ""
    backoff_s: float = 0.0
    size_bytes: int = 90


@dataclass
class DetachRequest(NasMessage):
    """UE -> MME: leaving the network (releases bearer and address)."""

    size_bytes: int = 100


# -- S6a (MME <-> HSS) -----------------------------------------------------------

@dataclass
class AuthInfoRequest(NasMessage):
    """MME -> HSS: vectors for an IMSI."""

    imsi: str = ""
    size_bytes: int = 150


@dataclass
class AuthInfoAnswer(NasMessage):
    """HSS -> MME: the vector, or a failure cause."""

    vector: object = None
    cause: str = ""
    size_bytes: int = 220


# -- S11 / S5 (MME <-> S-GW <-> P-GW) ------------------------------------------------

@dataclass
class CreateSessionRequest(NasMessage):
    """MME -> S-GW (forwarded to P-GW): set up the default bearer."""

    imsi: str = ""
    enb_address: Optional[IPv4Address] = None
    size_bytes: int = 200


@dataclass
class CreateSessionResponse(NasMessage):
    """S-GW -> MME: bearer TEIDs and the UE's allocated address."""

    ue_address: Optional[IPv4Address] = None
    sgw_teid: int = 0
    enb_teid: int = 0
    cause: str = ""
    size_bytes: int = 220


@dataclass
class DeleteSessionRequest(NasMessage):
    """MME -> S-GW: tear down a bearer on detach."""

    size_bytes: int = 120


@dataclass
class ModifyBearerRequest(NasMessage):
    """MME -> S-GW: re-point the downlink tunnel after handover."""

    imsi: str = ""
    new_enb_address: Optional[IPv4Address] = None
    size_bytes: int = 160


@dataclass
class ModifyBearerResponse(NasMessage):
    """S-GW -> MME: downlink path switched."""

    cause: str = "ok"
    size_bytes: int = 120


# -- idle mode / paging -----------------------------------------------------------

@dataclass
class UeContextRelease(NasMessage):
    """eNB/MME: RRC connection released; UE enters ECM-IDLE."""

    size_bytes: int = 100


@dataclass
class Paging(NasMessage):
    """MME -> every eNB in the tracking area: find this UE.

    The fan-out is the cost of in-network mobility: the core only knows
    the UE to tracking-area granularity, so *every* site transmits the
    page.
    """

    size_bytes: int = 110


@dataclass
class ServiceRequest(NasMessage):
    """UE -> MME: waking from idle; re-establish the data path."""

    size_bytes: int = 110


@dataclass
class ServiceAccept(NasMessage):
    """MME -> UE: context re-activated; bearers live again."""

    size_bytes: int = 110


# -- S1AP handover (X2-assisted path switch) ------------------------------------

@dataclass
class PathSwitchRequest(NasMessage):
    """Target eNB -> MME: UE has arrived; re-point the S1-U tunnel."""

    target_enb: str = ""
    enb_address: Optional[IPv4Address] = None
    size_bytes: int = 150


@dataclass
class PathSwitchAck(NasMessage):
    """MME -> target eNB: bearer moved; handover complete."""

    cause: str = "ok"
    size_bytes: int = 120
