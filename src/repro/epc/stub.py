"""The dLTE local core stub (§4.1).

"We deploy an EPC stub at each AP, virtualizing the required EPC
components (S-GW, P-GW, MME, and HSS) in software on a local processor
… paring its functions down to only those directly required by the
client."

One serial agent plays all four roles: it answers the UE's NAS messages
exactly like an MME (so stock clients interoperate), mints vectors
locally like an HSS — from *published* keys fetched once from the open
registry and cached — and allocates a publicly-routable address from the
AP's own pool like a P-GW. There is no S6a, S11, or S5: those interfaces
collapse into function calls, which is where the E7 latency advantage
comes from. There is deliberately no mobility management and no billing.
"""

from __future__ import annotations

import hmac as hmac_mod
from typing import Callable, Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.crypto import AuthVector, generate_auth_vector
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DetachRequest,
    SecurityModeCommand,
    SecurityModeComplete,
)
from repro.net.addressing import AddressPool, IPv4Address, PoolExhausted
from repro.simcore.simulator import Simulator


class LocalCoreStub(ControlAgent):
    """MME+HSS+S-GW+P-GW collapsed into one per-AP agent."""

    def __init__(self, sim: Simulator, name: str, pool: AddressPool,
                 registry: Optional[PublishedKeyRegistry] = None,
                 service_time_s: float = 0.5e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.pool = pool
        self.registry = registry
        self.s1: Optional[ControlChannel] = None
        self.alive = True
        self._key_cache: Dict[str, bytes] = {}
        self._sqn: Dict[str, int] = {}
        self._pending_vector: Dict[str, AuthVector] = {}
        self.sessions: Dict[str, IPv4Address] = {}
        # metrics
        self.attaches_completed = 0
        self.attaches_rejected = 0
        self.registry_fetches = 0
        self.cache_hits = 0
        self.crashes = 0
        self.dropped_while_down = 0
        metrics = sim.metrics
        self._m_completed = metrics.counter("epc.attach.completed", core=name)
        self._m_rejected = metrics.counter("epc.attach.rejected", core=name)
        self._m_cache_hits = metrics.counter("epc.stub.key_cache_hits",
                                             core=name)
        self._m_fetches = metrics.counter("epc.stub.registry_fetches",
                                          core=name)
        self._m_crashes = metrics.counter("epc.stub.crashes", core=name)
        self._m_sessions = metrics.gauge("epc.stub.sessions", core=name)
        #: open epc.attach spans keyed by ue_id (request -> accept/reject)
        self._attach_spans: Dict[str, object] = {}
        self.on_session_created: Optional[
            Callable[[str, IPv4Address], None]] = None
        self.on_session_deleted: Optional[Callable[[str], None]] = None

    def connect_enb(self, channel: ControlChannel) -> None:
        """Register the (on-box) S1 channel to the co-located eNodeB."""
        self.s1 = channel

    def preload_key(self, imsi: str, key: bytes) -> None:
        """Seed the key cache (e.g. the AP owner's own devices)."""
        self._key_cache[imsi] = key

    # -- crash/restart lifecycle -------------------------------------------------------

    def crash(self) -> None:
        """Lose power: every session, pending procedure, and queued
        message vanishes; addresses return to the pool; inbound messages
        are dropped until :meth:`restart`."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self._m_crashes.inc()
        for span in self._attach_spans.values():
            span.end(status="crashed")
        self._attach_spans.clear()
        for ue_id in list(self.sessions):
            address = self.sessions.pop(ue_id)
            self.pool.release(address)
            if self.on_session_deleted is not None:
                self.on_session_deleted(ue_id)
        self._pending_vector.clear()
        self._shed_queue("crash")  # accounted, not silently cleared
        self._m_sessions.set(0)
        self.sim.trace("fault", f"{self.name}: crashed")

    def restart(self) -> None:
        """Power restored: come back empty — RAM state (key cache, SQN
        counters, sessions) did not survive; clients must re-attach."""
        if self.alive:
            return
        self.alive = True
        self._key_cache.clear()
        self._sqn.clear()
        self.sim.trace("fault", f"{self.name}: restarted")

    def enqueue(self, message: ControlMessage) -> None:
        if not self.alive:
            self.dropped_while_down += 1
            return
        super().enqueue(message)

    def _send_congestion_reject(self, message: ControlMessage,
                                backoff_s: float) -> None:
        """Admission control refused an AttachRequest at enqueue time:
        send the T3346-style congestion reject without spending any
        stub service time on the refused attach."""
        if self.s1 is None:
            return
        request = message.payload
        self.attaches_rejected += 1
        self._m_rejected.inc()
        self.s1.send(self, AttachReject(ue_id=request.ue_id,
                                        cause="congestion",
                                        backoff_s=backoff_s))

    # -- dispatch --------------------------------------------------------------------

    def handle(self, message: ControlMessage) -> None:
        if not self.alive:
            self.dropped_while_down += 1
            return
        payload = message.payload
        if isinstance(payload, AttachRequest):
            self._on_attach_request(payload)
        elif isinstance(payload, AuthenticationResponse):
            self._on_auth_response(payload)
        elif isinstance(payload, SecurityModeComplete):
            self._on_security_complete(payload)
        elif isinstance(payload, AttachComplete):
            self.attaches_completed += 1
            self._m_completed.inc()
            span = self._attach_spans.pop(payload.ue_id, None)
            if span is not None:
                span.end(status="ok")
        elif isinstance(payload, DetachRequest):
            self._on_detach(payload)

    # -- attach -----------------------------------------------------------------------

    def _on_attach_request(self, request: AttachRequest) -> None:
        stale = self._attach_spans.pop(request.ue_id, None)
        if stale is not None:
            stale.end(status="superseded")
        self._attach_spans[request.ue_id] = self.sim.span(
            "epc.attach", core=self.name, ue=request.ue_id)
        key = self._key_cache.get(request.imsi)
        if key is not None:
            self.cache_hits += 1
            self._m_cache_hits.inc()
            self._challenge(request.ue_id, request.imsi, key)
            return
        if self.registry is None:
            self._reject(request.ue_id, "unknown-subscriber")
            return
        self.registry_fetches += 1
        self._m_fetches.inc()
        self.registry.lookup(
            request.imsi,
            lambda fetched: self._on_key_fetched(request, fetched))

    def _on_key_fetched(self, request: AttachRequest,
                        key: Optional[bytes]) -> None:
        if key is None:
            self._reject(request.ue_id, "not-published")
            return
        self._key_cache[request.imsi] = key
        self._challenge(request.ue_id, request.imsi, key)

    def _challenge(self, ue_id: str, imsi: str, key: bytes) -> None:
        sqn = self._sqn.get(imsi, 0)
        self._sqn[imsi] = sqn + 1
        rand = bytes(self.sim.rng(f"stub:{self.name}").bytes(16))
        vector = generate_auth_vector(key, rand, sqn=sqn)
        self._pending_vector[ue_id] = vector
        self.s1.send(self, AuthenticationRequest(ue_id=ue_id, rand=rand,
                                                 autn=vector.autn, sqn=sqn))

    def _on_auth_response(self, response: AuthenticationResponse) -> None:
        vector = self._pending_vector.get(response.ue_id)
        if vector is None:
            return
        if not hmac_mod.compare_digest(response.res, vector.xres):
            del self._pending_vector[response.ue_id]
            self.attaches_rejected += 1
            self.s1.send(self, AuthenticationReject(ue_id=response.ue_id))
            return
        self.s1.send(self, SecurityModeCommand(ue_id=response.ue_id))

    def _on_security_complete(self, msg: SecurityModeComplete) -> None:
        if msg.ue_id not in self._pending_vector:
            return
        del self._pending_vector[msg.ue_id]
        try:
            address = self.pool.allocate()
        except PoolExhausted:
            self._reject(msg.ue_id, "no-addresses")
            return
        self.sessions[msg.ue_id] = address
        self._m_sessions.set(len(self.sessions))
        self.sim.trace("attach", f"{self.name}: session created",
                       ue=msg.ue_id, address=str(address))
        if self.on_session_created is not None:
            self.on_session_created(msg.ue_id, address)
        self.s1.send(self, AttachAccept(ue_id=msg.ue_id, ue_address=address,
                                        guti=f"{self.name}-{msg.ue_id}"))

    def _on_detach(self, msg: DetachRequest) -> None:
        address = self.sessions.pop(msg.ue_id, None)
        if address is not None:
            self.pool.release(address)
            self._m_sessions.set(len(self.sessions))
            if self.on_session_deleted is not None:
                self.on_session_deleted(msg.ue_id)

    def _reject(self, ue_id: str, cause: str) -> None:
        self.attaches_rejected += 1
        self._m_rejected.inc()
        span = self._attach_spans.pop(ue_id, None)
        if span is not None:
            span.end(status="rejected", cause=cause)
        self.s1.send(self, AttachReject(ue_id=ue_id, cause=cause))
