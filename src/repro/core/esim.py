"""e-SIM multi-profile devices (§4.2).

"The GSMA recently finalized specifications for remotely provisionable
'e-SIMs,' which allow for holding multiple identities on different
networks simultaneously … end users could simultaneously maintain an
open dLTE SIM alongside other secured SIMs for different networks."

An :class:`EsimDevice` holds several :class:`SubscriberProfile` slots
and selects the right identity per network: the published dLTE profile
for open APs, the private carrier profile for the carrier. Publication
state is enforced per-profile, so opting into dLTE never leaks the
carrier key.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.epc.keys import PublishedKeyRegistry
from repro.epc.subscriber import SubscriberProfile


class EsimDevice:
    """A device's e-SIM: named profile slots with per-network selection."""

    def __init__(self, device_id: str) -> None:
        if not device_id:
            raise ValueError("device_id must be non-empty")
        self.device_id = device_id
        self._profiles: Dict[str, SubscriberProfile] = {}

    def install(self, slot: str, profile: SubscriberProfile) -> None:
        """Provision a profile into a named slot (replaces silently)."""
        self._profiles[slot] = profile

    def remove(self, slot: str) -> None:
        """Delete a profile (KeyError if absent)."""
        del self._profiles[slot]

    def profile(self, slot: str) -> SubscriberProfile:
        """Fetch a profile by slot name."""
        try:
            return self._profiles[slot]
        except KeyError:
            raise KeyError(
                f"device {self.device_id} has no profile slot {slot!r}; "
                f"slots: {sorted(self._profiles)}") from None

    @property
    def slots(self) -> List[str]:
        """Installed slot names."""
        return sorted(self._profiles)

    def profile_for_network(self, open_network: bool) -> SubscriberProfile:
        """Pick an identity: published profile for open networks.

        Open (dLTE) networks need a published profile; closed (carrier)
        networks get a private one. Raises LookupError when the device
        holds no suitable identity.
        """
        for profile in self._profiles.values():
            if profile.published == open_network:
                return profile
        kind = "published (dLTE)" if open_network else "private (carrier)"
        raise LookupError(
            f"device {self.device_id} has no {kind} profile installed")

    def generate_dlte_profile(self, imsi: str,
                              registry: Optional[PublishedKeyRegistry] = None,
                              slot: str = "dlte") -> SubscriberProfile:
        """Mint a fresh open identity and (optionally) publish it.

        Models the "easier to generate and deploy new identities" e-SIM
        workflow: key derived per (device, imsi), marked published, and
        pushed to the registry in one step.
        """
        key = hashlib.sha256(
            f"esim:{self.device_id}:{imsi}".encode()).digest()[:16]
        profile = SubscriberProfile(imsi=imsi, key=key, published=True)
        self.install(slot, profile)
        if registry is not None:
            registry.publish(profile)
        return profile
