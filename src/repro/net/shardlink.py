"""Shard-boundary proxies: control channels and data links that cross shards.

A sharded run (:mod:`repro.simcore.sharded`) keeps every component's
event in its own shard's heap. The two ways traffic leaves a shard are a
control-plane channel (S1/X2 style, :class:`CrossShardChannel`) and a
data-plane link (backhaul, :class:`CrossShardLink`). Both present the
exact local API of their monolithic counterparts
(:class:`~repro.epc.agents.ControlChannel`, :class:`~repro.net.links.Link`)
and differ only in where a send lands: instead of scheduling the remote
delivery into a heap they cannot see, they hand the payload to the shard
boundary, which releases it at the next window barrier.

Co-location contract: when both halves of a proxy pair live in the *same*
shard (always true at ``shards=1``), the boundary short-circuits to a
plain ``post_at`` into the local heap, and the channel resolves its real
peer agent — timings, sender identities, and counters match the
monolithic classes exactly. That is what makes ``shards=1`` the
monolithic run rather than an approximation of it.

Latency rule: a *cross*-shard proxy's one-way delay is a lookahead
declaration — it must be strictly positive (the façade raises
:class:`~repro.simcore.sharded.ZeroLookaheadError` otherwise), because the
window length is the minimum such delay. Co-located proxies may use any
non-negative delay; they never constrain the window.
"""

from __future__ import annotations

from typing import Optional

from repro.epc.agents import ControlAgent, ControlMessage
from repro.net.links import Link
from repro.net.packet import Packet
from repro.simcore.sharded import ShardBoundary
from repro.simcore.simulator import Simulator

__all__ = [
    "CrossShardChannel",
    "CrossShardLink",
    "CrossShardLinkExit",
    "RemoteAgentStub",
]

_INF = float("inf")


class RemoteAgentStub:
    """Stands in for an agent that lives in another shard.

    Control agents route on ``message.sender.name`` (and eNB relays on
    sender *identity* versus ``channel.other_end``), so the stub carries
    the remote agent's name and is the object the local half returns
    from :meth:`CrossShardChannel.other_end` — identity checks against
    it therefore behave exactly like checks against the real peer.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<RemoteAgentStub {self.name}>"


class CrossShardChannel:
    """Half of a control channel whose peer may live in another shard.

    Unlike :class:`~repro.epc.agents.ControlChannel` (one object, two
    ends), a cross-shard channel is built as **two halves sharing a
    name** — one per shard, each wrapping its local agent. The halves
    find each other through the boundary endpoint registry: keys are
    ``"{name}@{agent_name}"``, so a half addresses its peer without ever
    holding a reference into the other shard.

    The local API mirrors ``ControlChannel``: ``send``/``other_end``/
    ``set_up``/``up`` plus the ``messages``/``bytes``/``dropped``
    counters and ``epc.channel.*`` metrics. ``set_up`` acts on *this*
    half only — to sever a cross-shard path both halves must be cut
    (each direction's drop happens at its sender).
    """

    def __init__(self, sim: Simulator, boundary: ShardBoundary,
                 local_agent: ControlAgent, remote_agent_name: str,
                 remote_shard: int, one_way_delay_s: float,
                 name: str = "") -> None:
        if one_way_delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.boundary = boundary
        self.local_agent = local_agent
        self.remote_agent_name = remote_agent_name
        self.remote_shard = remote_shard
        self.one_way_delay_s = one_way_delay_s
        self.name = name or f"{local_agent.name}<->{remote_agent_name}"
        self.key = f"{self.name}@{local_agent.name}"
        self.peer_key = f"{self.name}@{remote_agent_name}"
        self.up = True
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.received = 0
        self._stub = RemoteAgentStub(remote_agent_name)
        self._m_messages = sim.metrics.counter("epc.channel.messages",
                                               channel=self.name)
        self._m_bytes = sim.metrics.counter("epc.channel.bytes",
                                            channel=self.name)
        self._m_dropped = sim.metrics.counter("epc.channel.dropped",
                                              channel=self.name)
        boundary.register(self.key, self)
        boundary.couple(self.name, remote_shard, one_way_delay_s)

    def set_up(self, up: bool) -> None:
        """Raise or cut this half (drops happen at the sending side)."""
        if up != self.up:
            self.sim.trace("fault",
                           f"channel {self.name} {'up' if up else 'down'}")
        self.up = up

    def other_end(self, agent: ControlAgent) -> object:
        """The peer of ``agent``: the real agent if co-located, else a stub."""
        if agent is not self.local_agent:
            raise ValueError(
                f"{agent.name} is not an end of channel {self.name}")
        peer = self.boundary.endpoints.get(self.peer_key)
        if peer is not None:
            return peer.local_agent
        return self._stub

    def send(self, sender: ControlAgent, payload: object) -> None:
        """Deliver ``payload`` to the remote half after the channel delay."""
        if sender is not self.local_agent:
            raise ValueError(
                f"{sender.name} is not the local end of channel {self.name}")
        if not self.up:
            self.dropped += 1
            self._m_dropped.inc()
            self.sim.trace("drop", f"channel {self.name}: down",
                           payload=type(payload).__name__)
            return
        self.messages += 1
        size = getattr(payload, "size_bytes", 0)
        self.bytes += size
        self._m_messages.inc()
        self._m_bytes.inc(size)
        sim = self.sim
        sent_at = sim.now
        deliver_at = sent_at + self.one_way_delay_s
        peer = self.boundary.endpoints.get(self.peer_key)
        if peer is not None:
            # Co-located: same single delivery event a ControlChannel
            # posts, with the *real* sender so identity routing holds.
            message = ControlMessage(payload=payload, sender=sender,
                                     sent_at=sent_at)
            sim.post_at(deliver_at, peer._deliver_local, message)
        else:
            self.boundary.buffer(self.peer_key, self.remote_shard,
                                 deliver_at, sent_at, payload)

    def _deliver_local(self, message: ControlMessage) -> None:
        """Ingress from a co-located peer half."""
        self.received += 1
        self.local_agent.enqueue(message)

    def _deliver_remote(self, payload: object, sent_at: float) -> None:
        """Ingress from the boundary: wrap with the remote sender's stub."""
        self.received += 1
        self.local_agent.enqueue(ControlMessage(payload=payload,
                                                sender=self._stub,
                                                sent_at=sent_at))


class CrossShardLink(Link):
    """A data link whose receiving end lives in (possibly) another shard.

    Serialization, drop-tail queueing, loss, and up/down behave exactly
    like :class:`~repro.net.links.Link` — the subclass replaces only the
    propagation stage: instead of a local flight deque and receive
    callback, a serialized packet is handed to the shard boundary with
    its arrival deadline ``service_done + delay_s``, and a
    :class:`CrossShardLinkExit` registered in the destination shard
    delivers it. ``delivered``/``crossed`` count at the hand-off (the
    packet has left this shard's books); the exit's ``received`` counts
    arrivals, and the pair closes the cross-boundary conservation law
    the E19 invariant audit checks::

        crossed == exit.received + records still pending at the horizon

    Divergence from ``Link``, by design: taking the link down mid-window
    does not destroy packets that already crossed the boundary (they are
    beyond this shard's reach), whereas a monolithic link drops its
    whole flight. AQM/managed mode is unsupported — the byte ledger
    cannot straddle the boundary — and :meth:`set_aqm` raises.
    """

    def __init__(self, sim: Simulator, boundary: ShardBoundary,
                 rate_bps: float, delay_s: float, dst_shard: int,
                 queue_packets: int = 100, name: str = "xlink") -> None:
        super().__init__(sim, rate_bps, delay_s, queue_packets, name)
        self.boundary = boundary
        self.dst_shard = dst_shard
        self.exit_key = f"{name}@exit"
        self.crossed = 0
        # send() requires a receiver; the boundary is ours.
        self.receiver = self._boundary_receiver
        boundary.couple(name, dst_shard, delay_s)

    @staticmethod
    def _boundary_receiver(packet: Packet) -> None:  # pragma: no cover
        raise RuntimeError("cross-shard link delivers via the boundary")

    def set_aqm(self, discipline) -> None:
        raise NotImplementedError(
            "AQM/managed mode is not supported on cross-shard links: the "
            "byte ledger cannot straddle a shard boundary")

    def connect(self, receiver) -> None:
        raise NotImplementedError(
            "cross-shard links deliver through a CrossShardLinkExit in "
            "the destination shard, not a local receiver")

    def _start_service(self, start: float, packet: Packet) -> None:
        size = packet.size_bytes
        rate = self.rate_bps
        done = start + (size * 8.0 / rate if rate != _INF else 0.0)
        self._service_done = done
        self.bytes_sent += size
        self._m_bytes.inc(size)
        # The packet leaves this shard's books at the end of
        # serialization: delivered-at-the-boundary, not at the receiver.
        self.in_flight -= 1
        self.delivered += 1
        self.crossed += 1
        self._m_delivered.inc()
        self.boundary.buffer(self.exit_key, self.dst_shard,
                             done + self.delay_s, start, packet)
        if rate != _INF:
            # One promotion wake-up per serialized packet, so a queued
            # packet starts service the instant the serializer frees
            # (the base class reuses its delivery wake-up for this, but
            # delivery now happens in another shard).
            self.sim.post_at(done, self._promote)

    def _promote(self) -> None:
        self._advance(self.sim.now)


class CrossShardLinkExit:
    """Receiving end of a :class:`CrossShardLink`, in the destination shard.

    Registers under ``"{link_name}@exit"`` and forwards arriving packets
    to the local receive callback at their deadline. ``received`` /
    ``received_bytes`` close the conservation audit with the link's
    ``crossed`` counter.
    """

    __slots__ = ("sim", "name", "receiver", "received", "received_bytes")

    def __init__(self, sim: Simulator, boundary: ShardBoundary, name: str,
                 receiver) -> None:
        self.sim = sim
        self.name = name
        self.receiver = receiver
        self.received = 0
        self.received_bytes = 0
        boundary.register(f"{name}@exit", self)

    def _deliver_remote(self, packet: Packet, sent_at: float) -> None:
        self.received += 1
        self.received_bytes += packet.size_bytes
        self.receiver(packet)
