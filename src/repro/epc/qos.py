"""Per-bearer QoS policing for the S-GW/P-GW user plane.

PR 6 bounded the *control* plane (``epc/overload.py``: bounded agent
queues, class-aware shedding). This is the data-plane mirror: under
sustained overload the combined gateway (:class:`EpcDataPlane` is the
co-located S-GW/P-GW user plane) must keep guaranteed-bitrate bearers
flowing and shed bulk traffic *first*, instead of letting every flow
degrade equally in one shared drop-tail queue.

Same discipline protocol as the control-plane module: an immutable
:class:`QosPolicy`, small-integer traffic classes ordered by importance
(lower = more important), and shedding accounted by class so the
conservation law ``offered == admitted + shed`` is auditable.

Mechanics — classic LTE bearer policing, simplified to three classes:

* :data:`CLASS_GBR` (voice-like bearers) draws from a token bucket
  refilled at the policy's guaranteed rate.
* :data:`CLASS_INTERACTIVE` and :data:`CLASS_BULK` (non-GBR bearers)
  share the remaining rate in proportion to ``policy.weights``.
* Borrowing is strictly *downward* in priority: a GBR packet whose own
  bucket is empty may spend interactive or bulk tokens, interactive may
  spend bulk tokens, bulk spends only its own — so when the offered
  load exceeds the policed rate, bulk starves first, interactive
  second, and the guaranteed class last. That ordering is the
  "Detach/Paging outranks bulk" story of ``overload.py``, restated for
  bytes.

Buckets refill lazily on the sim clock (pure float arithmetic per
``admit``), so the policer schedules nothing and a data plane without
one installed pays a single ``is None`` check per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net.packet import Packet
from repro.simcore.simulator import Simulator

__all__ = ["QosPolicy", "BearerPolicer", "CLASS_GBR", "CLASS_INTERACTIVE",
           "CLASS_BULK", "CLASS_NAMES"]

#: guaranteed-bitrate bearers (voice): must keep flowing under overload.
CLASS_GBR = 0
#: non-GBR interactive traffic (web): weighted share of what remains.
CLASS_INTERACTIVE = 1
#: non-GBR bulk (video segments, downloads): first to shed.
CLASS_BULK = 2

CLASS_NAMES = ("gbr", "interactive", "bulk")


@dataclass(frozen=True)
class QosPolicy:
    """Token-bucket configuration for one gateway's policer.

    Attributes:
        rate_bps: aggregate rate the policer admits, all classes
            combined (typically sized to the backhaul bottleneck so the
            *policer* decides who degrades, not a FIFO queue).
        gbr_bps: slice of ``rate_bps`` reserved for GBR bearers.
        weights: ``(interactive, bulk)`` proportions of the non-GBR
            remainder (``rate_bps - gbr_bps``).
        burst_bytes: depth of each class's bucket — how much of an idle
            class's rate can be banked for a burst.
    """

    rate_bps: float
    gbr_bps: float = 0.0
    weights: Tuple[float, float] = (3.0, 1.0)
    burst_bytes: int = 30_000

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if not 0.0 <= self.gbr_bps < self.rate_bps:
            raise ValueError("gbr_bps must be in [0, rate_bps)")
        if len(self.weights) != 2 or any(w <= 0 for w in self.weights):
            raise ValueError("weights must be two positive numbers "
                             "(interactive, bulk)")
        if self.burst_bytes < 1:
            raise ValueError("burst_bytes must hold at least one byte")


class BearerPolicer:
    """Admit-or-shed gate for a gateway data plane.

    Bearers register their transport flow ids with a class
    (:meth:`register_bearer`); unregistered flows are policed as
    :data:`CLASS_BULK`, so forgetting to classify a flow can only make
    it shed *earlier*, never jump the guarantee.
    """

    def __init__(self, sim: Simulator, policy: QosPolicy,
                 name: str = "policer") -> None:
        self.sim = sim
        self.policy = policy
        self.name = name
        self._class_by_flow: Dict[str, int] = {}
        non_gbr = policy.rate_bps - policy.gbr_bps
        w_total = policy.weights[0] + policy.weights[1]
        #: refill rates in bytes/second, indexed by class
        self._rates = (
            policy.gbr_bps / 8.0,
            non_gbr * policy.weights[0] / w_total / 8.0,
            non_gbr * policy.weights[1] / w_total / 8.0,
        )
        cap = float(policy.burst_bytes)
        self._cap = cap
        self._tokens = [cap, cap, cap]
        self._last_refill = sim.now
        # ledger: offered == admitted + shed, also split by class
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.admitted_bytes = 0
        self.shed_bytes = 0
        self.offered_by_class = [0, 0, 0]
        self.shed_by_class = [0, 0, 0]
        metrics = sim.metrics
        self._m_shed = {
            cls: metrics.counter("epc.qos.shed", policer=name,
                                 qos_class=CLASS_NAMES[cls])
            for cls in (CLASS_GBR, CLASS_INTERACTIVE, CLASS_BULK)
        }

    def register_bearer(self, flow_id: str, qos_class: int) -> None:
        """Bind a transport flow id to a QoS class."""
        if qos_class not in (CLASS_GBR, CLASS_INTERACTIVE, CLASS_BULK):
            raise ValueError(f"unknown QoS class {qos_class!r}")
        self._class_by_flow[flow_id] = qos_class

    def deregister_bearer(self, flow_id: str) -> None:
        """Remove a binding (bearer teardown)."""
        self._class_by_flow.pop(flow_id, None)

    def classify(self, packet: Packet) -> int:
        """The packet's QoS class (unregistered flows are bulk)."""
        return self._class_by_flow.get(packet.flow_id, CLASS_BULK)

    def admit(self, packet: Packet) -> bool:
        """Spend tokens for the packet; False means shed it."""
        now = self.sim.now
        elapsed = now - self._last_refill
        tokens = self._tokens
        if elapsed > 0.0:
            rates = self._rates
            cap = self._cap
            for i in range(3):
                filled = tokens[i] + rates[i] * elapsed
                tokens[i] = filled if filled < cap else cap
            self._last_refill = now
        cls = self._class_by_flow.get(packet.flow_id, CLASS_BULK)
        size = packet.size_bytes
        self.offered += 1
        self.offered_by_class[cls] += 1
        # own bucket first, then borrow strictly downward in priority
        for source in range(cls, 3):
            if tokens[source] >= size:
                tokens[source] -= size
                self.admitted += 1
                self.admitted_bytes += size
                return True
        self.shed += 1
        self.shed_bytes += size
        self.shed_by_class[cls] += 1
        self._m_shed[cls].inc()
        return False
