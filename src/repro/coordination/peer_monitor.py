"""Peer liveness: the "dLTE peer status" X2 extension (§4.3).

An open federation has churn: an AP owner unplugs their box, a backhaul
dies, a site loses power. Nobody files a ticket — the *protocol* must
notice. Each AP heartbeats ``DlteModeInfo(peer_status="active")`` to its
peers; miss ``MISSED_LIMIT`` consecutive intervals and the peer is
declared dead, its X2 connection dropped, and the fair-sharing
coordinator re-announces — so the survivors reclaim the dead AP's
spectrum within a few heartbeat periods instead of leaving it fallow
forever.

Churn goes both ways: a dead peer may come *back* (power restored,
backhaul spliced). When a peer previously declared dead is heard from
again — it re-peered via discovery and announced — the monitor
*re-admits* it: the death record is cleared, ``peers_rejoined`` counts
it, and the optional ``on_peer_rejoined`` callback fires. Fair sharing
reconverges through the ordinary claim protocol, shrinking the
survivors' slices back to the equal split.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.coordination.fair_sharing import FairSharingCoordinator
from repro.coordination.x2 import DlteModeInfo, X2Endpoint, X2Message
from repro.simcore.simulator import Simulator


class PeerMonitor:
    """Heartbeats out, liveness timers in, reclamation on loss.

    Args:
        sim: event kernel.
        x2: this AP's X2 endpoint.
        coordinator: the fair-sharing instance to re-announce on churn.
        heartbeat_s: interval between outgoing heartbeats.
        missed_limit: consecutive missed intervals before declaring death.
        on_peer_lost: optional callback(peer_ap_id).
        on_peer_rejoined: optional callback(peer_ap_id) when a peer
            previously declared dead is heard from again.
    """

    MISSED_LIMIT = 3

    def __init__(self, sim: Simulator, x2: X2Endpoint,
                 coordinator: Optional[FairSharingCoordinator] = None,
                 heartbeat_s: float = 2.0,
                 missed_limit: int = MISSED_LIMIT,
                 on_peer_lost: Optional[Callable[[str], None]] = None,
                 on_peer_rejoined: Optional[Callable[[str], None]] = None
                 ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if missed_limit < 1:
            raise ValueError("missed limit must be at least 1")
        self.sim = sim
        self.x2 = x2
        self.coordinator = coordinator
        self.heartbeat_s = heartbeat_s
        self.missed_limit = missed_limit
        self.on_peer_lost = on_peer_lost
        self.on_peer_rejoined = on_peer_rejoined
        self._last_heard: Dict[str, float] = {}
        self._dead: set = set()
        self.peers_lost = 0
        self.peers_rejoined = 0
        self.heartbeats_sent = 0
        self._running = False
        self._generation = 0
        x2.add_handler(self._on_x2)
        x2.on_peer_connected.append(self._on_peer_connected)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeating and watching (idempotent).

        (Re)starting grants every current peer a fresh liveness window —
        otherwise an AP restarting after an outage would instantly
        declare its (stale-timestamped) peers dead.
        """
        if self._running:
            return
        self._running = True
        self._generation += 1
        for peer in self.x2.peer_ids:
            self._last_heard[peer] = self.sim.now
        self.sim.process(self._run(self._generation),
                         name=f"peer-monitor:{self.x2.ap_id}")

    def stop(self) -> None:
        """Stop heartbeating (watching stops with it)."""
        self._running = False

    def _run(self, generation: int):
        # the generation guard retires this process if the monitor was
        # stopped and restarted while a heartbeat timeout was pending
        while self._running and generation == self._generation:
            self.x2.broadcast(DlteModeInfo(sender_ap=self.x2.ap_id,
                                           peer_status="active"))
            self.heartbeats_sent += 1
            yield self.sim.timeout(self.heartbeat_s)
            if self._running and generation == self._generation:
                self._check_liveness()

    # -- liveness accounting ------------------------------------------------------------

    def _on_x2(self, from_ap: str, message: X2Message) -> None:
        # any X2 traffic proves liveness, not just heartbeats
        if from_ap in self._dead:
            self._readmit(from_ap)
        self._last_heard[from_ap] = self.sim.now

    def _on_peer_connected(self, peer_ap_id: str) -> None:
        # a fresh (re)peering is itself a liveness signal: grant a new
        # window immediately, or a peer rejoining after an outage gets
        # judged by its stale pre-crash timestamp and is re-declared
        # dead before its first claim even arrives — severing the new
        # channel and wedging the federation in split-brain slices
        self._last_heard[peer_ap_id] = self.sim.now
        if peer_ap_id in self._dead:
            self._readmit(peer_ap_id)

    def last_heard_s(self, peer_ap_id: str) -> Optional[float]:
        """When we last heard from a peer (None = never)."""
        return self._last_heard.get(peer_ap_id)

    def _check_liveness(self) -> None:
        deadline = self.sim.now - self.missed_limit * self.heartbeat_s
        for peer in list(self.x2.peer_ids):
            heard = self._last_heard.get(peer)
            if heard is None:
                self._last_heard[peer] = self.sim.now
                continue
            if heard < deadline:
                self._declare_dead(peer)

    def _declare_dead(self, peer_ap_id: str) -> None:
        self.peers_lost += 1
        self._dead.add(peer_ap_id)
        self._last_heard.pop(peer_ap_id, None)
        self.x2.disconnect_peer(peer_ap_id)
        self.sim.trace("peer-monitor",
                       f"{self.x2.ap_id}: declared {peer_ap_id} dead")
        if self.coordinator is not None:
            # membership shrank: reconverge so the survivors split the
            # dead AP's spectrum among themselves
            self.coordinator.announce()
        if self.on_peer_lost is not None:
            self.on_peer_lost(peer_ap_id)

    def _readmit(self, peer_ap_id: str) -> None:
        """A dead peer is alive again (it re-peered and spoke): clear the
        death record so liveness tracking resumes from now."""
        self._dead.discard(peer_ap_id)
        self.peers_rejoined += 1
        self.sim.trace("peer-monitor",
                       f"{self.x2.ap_id}: re-admitted {peer_ap_id}")
        if self.on_peer_rejoined is not None:
            self.on_peer_rejoined(peer_ap_id)

    def is_dead(self, peer_ap_id: str) -> bool:
        """True while a peer stands declared dead (and not re-admitted)."""
        return peer_ap_id in self._dead
