"""Bench T1 — regenerate Table 1 (the design-space quadrants)."""

from conftest import emit, once

from repro.experiments import t1_design_space


def test_t1_design_space(benchmark):
    quadrants, matrix = once(benchmark, t1_design_space.run)
    emit([quadrants, matrix])
    # the paper's claim: dLTE alone fills the open-core/licensed quadrant
    assert t1_design_space.dlte_quadrant_is_unique()
    # and the closed/licensed cell holds the incumbents
    closed_licensed = quadrants.rows[1]["closed_core"]
    assert "Telecom LTE" in closed_licensed
    assert "Private LTE" in closed_licensed
    assert quadrants.rows[0]["open_core"] == "Legacy WiFi"
