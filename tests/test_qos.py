"""Per-bearer QoS policing (``repro.epc.qos``) and its datapath wiring.

The policer is the data-plane mirror of ``epc/overload.py``'s class-
aware shedding: GBR bearers draw a guaranteed token bucket, non-GBR
classes share the remainder by weight, and borrowing is strictly
downward in priority — so under overload bulk starves first and the
guaranteed class last. These tests pin the bucket mechanics, the
conservation ledger, and the gateway hook points.
"""

import pytest

from repro.core.datapath import EnbDataPlane, EpcDataPlane
from repro.epc.qos import (CLASS_BULK, CLASS_GBR, CLASS_INTERACTIVE,
                           CLASS_NAMES, BearerPolicer, QosPolicy)
from repro.net.addressing import IPv4Address
from repro.net.nodes import Host, NetworkNode
from repro.net.packet import Packet
from repro.simcore.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def _packet(flow_id="", size=1000):
    return Packet(src=None, dst=None, size_bytes=size, flow_id=flow_id)


def _policer(sim, rate_bps=80_000.0, gbr_bps=20_000.0, burst=5000):
    # 10 kB/s aggregate: 2.5 kB/s GBR, the rest 3:1 interactive:bulk
    policy = QosPolicy(rate_bps=rate_bps, gbr_bps=gbr_bps,
                       burst_bytes=burst)
    return BearerPolicer(sim, policy, name="test-policer")


# -- policy validation -----------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=0.0)
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=100.0, gbr_bps=100.0)   # must be < rate
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=100.0, gbr_bps=-1.0)
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=100.0, weights=(1.0,))
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=100.0, weights=(1.0, 0.0))
    with pytest.raises(ValueError):
        QosPolicy(rate_bps=100.0, burst_bytes=0)


def test_class_names_align_with_constants():
    assert CLASS_NAMES[CLASS_GBR] == "gbr"
    assert CLASS_NAMES[CLASS_INTERACTIVE] == "interactive"
    assert CLASS_NAMES[CLASS_BULK] == "bulk"


def test_register_bearer_rejects_unknown_class(sim):
    policer = _policer(sim)
    with pytest.raises(ValueError):
        policer.register_bearer("flow", 7)


# -- bucket mechanics ------------------------------------------------------

def test_unregistered_flows_are_policed_as_bulk(sim):
    policer = _policer(sim)
    assert policer.classify(_packet("mystery")) == CLASS_BULK
    policer.register_bearer("voice", CLASS_GBR)
    assert policer.classify(_packet("voice")) == CLASS_GBR
    policer.deregister_bearer("voice")
    assert policer.classify(_packet("voice")) == CLASS_BULK


def test_tokens_refill_at_the_configured_rate(sim):
    policer = _policer(sim, burst=1000)
    policer.register_bearer("video", CLASS_BULK)
    # bulk never borrows, so its bucket isolates the refill arithmetic:
    # (80 - 20) kbps non-GBR, 1/4 weight -> 15 kbps = 1875 B/s
    assert policer.admit(_packet("video", size=1000))   # the banked burst
    assert not policer.admit(_packet("video", size=1000))
    sim.run(until=0.4)        # 750 B refilled: still one byte short
    assert not policer.admit(_packet("video", size=1000))
    sim.run(until=0.8)        # another 750 B: now it fits, exactly once
    assert policer.admit(_packet("video", size=1000))
    assert not policer.admit(_packet("video", size=1000))


def test_borrowing_is_strictly_downward(sim):
    policer = _policer(sim, burst=1000)
    policer.register_bearer("voice", CLASS_GBR)
    policer.register_bearer("web", CLASS_INTERACTIVE)
    policer.register_bearer("video", CLASS_BULK)
    # bulk can only spend its own bucket: one 1000 B burst, then shed
    assert policer.admit(_packet("video", size=1000))
    assert not policer.admit(_packet("video", size=1000))
    # interactive still has its own bucket (bulk's is empty)
    assert policer.admit(_packet("web", size=1000))
    # ... but can NOT borrow upward from the GBR reserve
    assert not policer.admit(_packet("web", size=1000))
    # GBR spends its own bucket, and bulk/interactive being empty does
    # not affect it
    assert policer.admit(_packet("voice", size=1000))
    # GBR may then borrow downward — but everything is drained now
    assert not policer.admit(_packet("voice", size=1000))


def test_gbr_survives_overload_while_bulk_sheds_first(sim):
    policer = _policer(sim, rate_bps=80_000.0, gbr_bps=40_000.0, burst=2000)
    policer.register_bearer("voice", CLASS_GBR)
    policer.register_bearer("video", CLASS_BULK)

    def offer():
        while True:
            # 2x the policed aggregate, split evenly: voice fits in its
            # guarantee, video alone exceeds the whole non-GBR share
            yield sim.timeout(0.05)
            policer.admit(_packet("voice", size=250))
            policer.admit(_packet("video", size=750))

    sim.process(offer(), name="load")
    sim.run(until=20.0)
    assert policer.shed_by_class[CLASS_GBR] == 0
    assert policer.shed_by_class[CLASS_BULK] > 0


def test_conservation_ledger(sim):
    policer = _policer(sim, burst=2000)
    policer.register_bearer("voice", CLASS_GBR)
    for i in range(50):
        flow = ("voice", "web", "")[i % 3]
        policer.admit(_packet(flow, size=700))
    assert policer.offered == 50
    assert policer.offered == policer.admitted + policer.shed
    assert sum(policer.offered_by_class) == policer.offered
    assert sum(policer.shed_by_class) == policer.shed
    assert policer.shed > 0
    # shed metrics mirror the ledger, per class
    for cls in (CLASS_GBR, CLASS_INTERACTIVE, CLASS_BULK):
        counter = sim.metrics.counter("epc.qos.shed", policer="test-policer",
                                      qos_class=CLASS_NAMES[cls])
        assert counter.value == policer.shed_by_class[cls]


# -- datapath wiring -------------------------------------------------------

def _collector(sim, name):
    node = NetworkNode(sim, name)
    got = []
    node.handle = got.append
    return node, got


def test_enb_uplink_sheds_at_the_cell_site(sim):
    epc, got = _collector(sim, "epc")
    enb = EnbDataPlane(sim, "enb", IPv4Address("10.0.0.1"),
                       IPv4Address("10.0.0.2"), uplink_via="epc")
    enb.attach_link(epc)
    enb.open_bearer()
    enb.policer = BearerPolicer(
        sim, QosPolicy(rate_bps=80_000.0, burst_bytes=1000), name="enb-pol")
    ok = Packet(src=IPv4Address("10.9.0.1"), dst=IPv4Address("8.8.8.8"),
                size_bytes=900, flow_id="up")
    enb.handle(ok)
    big = Packet(src=IPv4Address("10.9.0.1"), dst=IPv4Address("8.8.8.8"),
                 size_bytes=900, flow_id="up")
    enb.handle(big)                      # bucket empty: shed pre-GTP
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0].tunnel_depth == 1      # admitted packet was encapsulated
    assert enb.policer.shed == 1
    assert enb.policer.shed_bytes == 900  # policed at IP size, not GTP


def test_epc_downlink_polices_before_encapsulation(sim):
    internet, got = _collector(sim, "internet")
    epc = EpcDataPlane(sim, "epc-gw", IPv4Address("10.0.0.2"),
                       internet_via="internet")
    epc.attach_link(internet)
    ue_addr = IPv4Address("10.9.0.1")
    epc.register_ue(ue_addr, IPv4Address("10.0.0.1"))
    epc.policer = BearerPolicer(
        sim, QosPolicy(rate_bps=80_000.0, burst_bytes=1500), name="pgw-pol")
    epc.policer.register_bearer("down", CLASS_INTERACTIVE)
    for _ in range(5):
        epc.handle(Packet(src=IPv4Address("8.8.8.8"), dst=ue_addr,
                          size_bytes=700, flow_id="down"))
    sim.run(until=1.0)
    # interactive drains its own 1500 B bucket (two packets), borrows
    # bulk's for two more, then the fifth is shed: never counted, never
    # GTP-wrapped
    assert len(got) == 4
    assert epc.downlink_packets == 4
    assert epc.policer.shed == 1


def test_no_policer_means_no_policing(sim):
    internet, got = _collector(sim, "internet")
    epc = EpcDataPlane(sim, "epc-gw", IPv4Address("10.0.0.2"),
                       internet_via="internet")
    epc.attach_link(internet)
    ue_addr = IPv4Address("10.9.0.1")
    epc.register_ue(ue_addr, IPv4Address("10.0.0.1"))
    assert epc.policer is None           # seed default: unpoliced
    for _ in range(10):
        epc.handle(Packet(src=IPv4Address("8.8.8.8"), dst=ue_addr,
                          size_bytes=1400, flow_id="down"))
    sim.run(until=1.0)
    assert len(got) == 10
