"""Property-based tests (hypothesis) on core data structures and invariants."""

import ipaddress
import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.coordination.fair_sharing import compute_weighted_partition
from repro.coordination.icic import reuse_partition
from repro.geo import Point
from repro.mac.schedulers import (
    ProportionalFairScheduler,
    QosAwareScheduler,
    RoundRobinScheduler,
    SchedulableUser,
)
from repro.metrics import jain_fairness
from repro.net import AddressPool, GtpTunnel, Packet, TunnelEndpoint
from repro.phy import (
    FreeSpace,
    LogDistance,
    OkumuraHata,
    db_to_linear,
    harq_goodput_factor,
    linear_to_db,
    lte_efficiency_for_sinr,
    select_lte_cqi,
    select_wifi_mcs,
)
from repro.phy.harq import block_error_rate
from repro.simcore import Simulator

IP = ipaddress.IPv4Address


# -- dB arithmetic ---------------------------------------------------------------

@given(st.floats(min_value=-120, max_value=120))
def test_db_roundtrip_property(db):
    assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


@given(st.floats(min_value=-100, max_value=100),
       st.floats(min_value=-100, max_value=100))
def test_db_addition_is_linear_multiplication(a, b):
    assert db_to_linear(a + b) == pytest.approx(
        db_to_linear(a) * db_to_linear(b), rel=1e-9)


# -- propagation monotonicity -----------------------------------------------------

@given(st.floats(min_value=10, max_value=50_000),
       st.floats(min_value=10, max_value=50_000),
       st.floats(min_value=150, max_value=1500))
def test_path_loss_monotone_in_distance(d1, d2, freq):
    assume(abs(d1 - d2) > 1.0)
    lo, hi = sorted([d1, d2])
    for model in (FreeSpace(), LogDistance(3.5),
                  OkumuraHata(environment="open")):
        assert model.path_loss_db(lo, freq) <= model.path_loss_db(hi, freq) + 1e-9


@given(st.floats(min_value=100, max_value=30_000),
       st.floats(min_value=150, max_value=749))
def test_hata_loss_monotone_in_frequency(distance, freq):
    model = OkumuraHata(environment="open")
    assert (model.path_loss_db(distance, freq)
            <= model.path_loss_db(distance, freq * 2) + 1e-9)


# -- rate tables --------------------------------------------------------------------

@given(st.floats(min_value=-30, max_value=40))
def test_lte_efficiency_nonnegative_and_bounded(sinr):
    eff = lte_efficiency_for_sinr(sinr)
    assert 0.0 <= eff <= 5.5547


@given(st.floats(min_value=-30, max_value=40),
       st.floats(min_value=0.1, max_value=10))
def test_efficiency_monotone_in_sinr(sinr, delta):
    assert (lte_efficiency_for_sinr(sinr)
            <= lte_efficiency_for_sinr(sinr + delta))


@given(st.floats(min_value=-30, max_value=40))
def test_selected_mcs_threshold_is_met(sinr):
    entry = select_lte_cqi(sinr)
    if entry is not None:
        assert entry.min_sinr_db <= sinr
    wifi = select_wifi_mcs(sinr)
    if wifi is not None:
        assert wifi.min_sinr_db <= sinr


# -- HARQ ---------------------------------------------------------------------------------

@given(st.floats(min_value=-30, max_value=30),
       st.floats(min_value=-10, max_value=25))
def test_bler_in_unit_interval(sinr, threshold):
    assert 0.0 <= block_error_rate(sinr, threshold) <= 1.0


@given(st.floats(min_value=-20, max_value=30),
       st.floats(min_value=-7, max_value=23),
       st.integers(min_value=0, max_value=8))
def test_harq_factor_in_unit_interval(sinr, threshold, retx):
    assert 0.0 <= harq_goodput_factor(sinr, threshold, max_retx=retx) <= 1.0


@given(st.floats(min_value=-15, max_value=10),
       st.floats(min_value=-7, max_value=23))
def test_combining_never_hurts(sinr, threshold):
    with_comb = harq_goodput_factor(sinr, threshold, combining=True)
    without = harq_goodput_factor(sinr, threshold, combining=False)
    assert with_comb >= without - 1e-12


# -- weighted partition ----------------------------------------------------------------------

ap_names = st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=4),
                    min_size=1, max_size=8, unique=True)


@given(st.integers(min_value=0, max_value=200), ap_names,
       st.data())
def test_partition_exact_disjoint_cover(n_prbs, names, data):
    weights = {name: data.draw(st.floats(min_value=0.1, max_value=10.0),
                               label=f"w[{name}]")
               for name in names}
    partition = compute_weighted_partition(n_prbs, weights)
    all_prbs = sorted(p for s in partition.values() for p in s)
    assert all_prbs == list(range(n_prbs))  # disjoint and complete


@given(st.integers(min_value=10, max_value=500), ap_names, st.data())
def test_partition_proportional_within_one_prb(n_prbs, names, data):
    weights = {name: data.draw(st.floats(min_value=0.1, max_value=10.0),
                               label=f"w[{name}]")
               for name in names}
    partition = compute_weighted_partition(n_prbs, weights)
    total = sum(weights.values())
    for name in names:
        exact = n_prbs * weights[name] / total
        assert abs(len(partition[name]) - exact) < 1.0 + 1e-9


@given(st.integers(min_value=0, max_value=120),
       st.integers(min_value=1, max_value=6),
       ap_names)
def test_reuse_partition_slices_within_colors(n_prbs, reuse, names):
    partition = reuse_partition(names, n_prbs, reuse)
    for name, prbs in partition.items():
        assert prbs <= frozenset(range(n_prbs))
    if reuse == 1:
        assert all(p == frozenset(range(n_prbs)) for p in partition.values())


# -- schedulers conserve PRBs -------------------------------------------------------------------

sinr_lists = st.lists(st.floats(min_value=-15, max_value=30),
                      min_size=1, max_size=12)


@given(sinr_lists, st.integers(min_value=0, max_value=100))
@settings(max_examples=50)
def test_schedulers_never_double_grant(sinrs, n_prbs):
    users = [SchedulableUser(f"u{i}", s) for i, s in enumerate(sinrs)]
    prbs = frozenset(range(n_prbs))
    for sched in (RoundRobinScheduler(), ProportionalFairScheduler(),
                  QosAwareScheduler()):
        grants = sched.allocate(users, prbs)
        seen = []
        for granted in grants.values():
            seen.extend(granted)
        assert len(seen) == len(set(seen))
        assert set(seen) <= prbs
        # only reachable users are granted
        reachable = {u.user_id for u in users if u.efficiency > 0}
        assert set(grants) <= reachable


@given(sinr_lists)
@settings(max_examples=50)
def test_full_grid_fully_used_when_someone_reachable(sinrs):
    users = [SchedulableUser(f"u{i}", s) for i, s in enumerate(sinrs)]
    prbs = frozenset(range(25))
    sched = ProportionalFairScheduler()
    grants = sched.allocate(users, prbs)
    if any(u.efficiency > 0 for u in users):
        assert sum(len(g) for g in grants.values()) == 25


# -- uplink contiguity invariant ----------------------------------------------------------------

@given(sinr_lists, st.sets(st.integers(min_value=0, max_value=99),
                           max_size=60))
@settings(max_examples=50)
def test_uplink_grants_always_contiguous_and_inside(sinrs, allowed_set):
    from repro.mac.uplink import ContiguousUplinkScheduler

    users = [SchedulableUser(f"u{i}", s) for i, s in enumerate(sinrs)]
    allowed = frozenset(allowed_set)
    grants = ContiguousUplinkScheduler().allocate(users, allowed)
    seen = []
    for uid, prbs in grants.items():
        lst = sorted(prbs)
        assert lst == list(range(lst[0], lst[0] + len(lst)))  # one block
        assert frozenset(lst) <= allowed
        seen.extend(lst)
    assert len(seen) == len(set(seen))  # disjoint


# -- NR monotonicity ------------------------------------------------------------------------------

@given(st.floats(min_value=-30, max_value=40),
       st.floats(min_value=0.1, max_value=10))
def test_nr_efficiency_monotone(sinr, delta):
    from repro.phy.nr import nr_efficiency_for_sinr

    assert nr_efficiency_for_sinr(sinr) <= nr_efficiency_for_sinr(sinr + delta)


@given(st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=4096))
def test_beamforming_gain_monotone(a, b):
    from repro.phy.nr import beamforming_gain_db

    lo, hi = sorted([a, b])
    assert beamforming_gain_db(lo) <= beamforming_gain_db(hi)


# -- fairness index -------------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                max_size=40))
def test_jain_bounds_property(xs):
    f = jain_fairness(xs)
    assert 1.0 / len(xs) - 1e-9 <= f <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1,
                max_size=20),
       st.floats(min_value=0.01, max_value=100))
def test_jain_scale_invariance_property(xs, scale):
    assert jain_fairness(xs) == pytest.approx(
        jain_fairness([x * scale for x in xs]), rel=1e-6)


# -- address pools ------------------------------------------------------------------------------

@given(st.integers(min_value=20, max_value=28), st.data())
@settings(max_examples=30)
def test_pool_alloc_release_invariants(prefix_len, data):
    pool = AddressPool(f"10.77.0.0/{prefix_len}")
    live = set()
    for _ in range(data.draw(st.integers(0, 60), label="ops")):
        if live and data.draw(st.booleans(), label="release?"):
            addr = data.draw(st.sampled_from(sorted(live)), label="victim")
            pool.release(addr)
            live.remove(addr)
        elif pool.in_use < pool.capacity:
            addr = pool.allocate()
            assert addr not in live          # never double-allocated
            assert pool.contains(addr)       # always inside the prefix
            live.add(addr)
    assert pool.in_use == len(live)


# -- GTP tunnels ----------------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=2**32 - 1),
       st.integers(min_value=40, max_value=9000),
       st.integers(min_value=1, max_value=5))
def test_gtp_nested_roundtrip_property(teid, size, depth):
    src, dst = IP("10.0.0.1"), IP("8.8.8.8")
    packet = Packet(src=src, dst=dst, size_bytes=size)
    endpoints = []
    for level in range(depth):
        local = IP(f"172.16.0.{level + 1}")
        remote = IP(f"172.16.1.{level + 1}")
        ep = TunnelEndpoint(local)
        ep.add_tunnel(GtpTunnel(teid, local, remote))
        endpoints.append(ep)
    for ep in endpoints:
        ep.encapsulate(packet, teid)
        packet.dst = ep.address  # loop it straight back for the test
    for ep in reversed(endpoints):
        ep.decapsulate(packet)
    assert (packet.src, packet.dst, packet.size_bytes) == (src, dst, size)
    assert packet.tunnel_depth == 0


# -- simulator ordering ------------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                max_size=50))
def test_simulator_executes_in_time_order(delays):
    sim = Simulator(0)
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert sorted(d for _t, d in fired) == sorted(delays)
    for t, d in fired:
        assert t == d


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10),
                          st.floats(min_value=0, max_value=10)),
                min_size=1, max_size=30))
def test_timeout_chains_accumulate(pairs):
    sim = Simulator(0)
    ends = []

    def proc(a, b):
        yield sim.timeout(a)
        yield sim.timeout(b)
        ends.append((sim.now, a + b))

    for a, b in pairs:
        sim.process(proc(a, b))
    sim.run()
    assert len(ends) == len(pairs)
    for now, expected in ends:
        assert now == pytest.approx(expected)


# -- geometry --------------------------------------------------------------------------------------------

coords = st.floats(min_value=-1e6, max_value=1e6)


@given(coords, coords, coords, coords)
def test_distance_symmetry_and_triangle(x1, y1, x2, y2):
    a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
    assert a.distance_to(b) == b.distance_to(a)
    assert (a.distance_to(b)
            <= a.distance_to(origin) + origin.distance_to(b) + 1e-6)


@given(coords, coords, coords, coords,
       st.floats(min_value=0, max_value=1e6))
def test_toward_never_overshoots(x1, y1, x2, y2, step):
    a, b = Point(x1, y1), Point(x2, y2)
    c = a.toward(b, step)
    assert c.distance_to(b) <= a.distance_to(b) + 1e-6
    assert a.distance_to(c) <= max(step, 0) + a.distance_to(b) * 1e-9 + 1e-6
