"""End-to-end ECN: transport marking, AQM CE-marks, and the ECE echo.

The loop under test: an ``ecn=True`` sender marks data segments ECT; a
congested AQM rewrites ECT -> CE instead of dropping; the receiver
echoes CE back as a one-shot ``ece`` ack flag; the sender halves its
window once per RTT. Everything is default-off — the seed's transports
send not-ECT and never react to ``ece``.
"""

import ipaddress

import pytest

from repro.net import Host, InternetCore, Router
from repro.net.aqm import CoDelDiscipline
from repro.net.packet import ECN_CE, ECN_ECT, ECN_NOT_ECT
from repro.simcore import Simulator
from repro.transport import (BulkTransferApp, QuicConnection, QuicListener,
                             TcpConnection, TcpListener, TransportDemux)

IP = ipaddress.IPv4Address


class Net:
    """Client -> AP -> Internet -> server, with a slow client uplink
    that a test can put under AQM before any traffic flows."""

    def __init__(self, seed=1, uplink_bps=1e6):
        self.sim = Simulator(seed)
        sim = self.sim
        self.inet = InternetCore(sim)
        self.ap = Router(sim, "ap")
        self.server_edge = Router(sim, "server_edge")
        self.inet.attach(self.ap, "10.1.0.0/16", access_delay_s=0.02)
        self.inet.attach(self.server_edge, "203.0.113.0/24",
                         access_delay_s=0.005)
        self.client = Host(sim, "client", IP("10.1.0.5"))
        self.client.connect_bidirectional(self.ap, rate_bps=uplink_bps,
                                          delay_s=0.005)
        self.ap.add_route("10.1.0.5/32", "client")
        self.server = Host(sim, "server", IP("203.0.113.10"))
        self.server.connect_bidirectional(self.server_edge, rate_bps=1e9,
                                          delay_s=0.001)
        self.server_edge.add_route("203.0.113.10/32", "server")
        self.cd = TransportDemux(self.client)
        self.sd = TransportDemux(self.server)
        #: the congestible hop: the client's uplink serializer
        self.bottleneck = self.client.links["ap"]

    def wiretap(self):
        """Record the ECN codepoint of every packet crossing the uplink."""
        seen = []
        downstream = self.bottleneck.receiver

        def tee(packet):
            seen.append(packet.ecn)
            downstream(packet)

        self.bottleneck.connect(tee)
        return seen


def _bulk(net, cls, listener_cls, nbytes=120_000, **kw):
    listener_cls(net.sim, net.sd)
    app = BulkTransferApp(net.sim, net.cd, net.server.address, cls,
                          total_bytes=nbytes, **kw)
    app.start()
    return app


def test_ecn_off_sends_not_ect():
    net = Net()
    seen = net.wiretap()
    app = _bulk(net, TcpConnection, TcpListener)
    net.sim.run(until=30)
    assert app.done_at is not None
    assert set(seen) == {ECN_NOT_ECT}    # the seed's wire, untouched


def test_ecn_on_marks_data_segments_ect():
    net = Net()
    seen = net.wiretap()
    app = _bulk(net, TcpConnection, TcpListener, ecn=True)
    net.sim.run(until=30)
    assert app.done_at is not None
    assert ECN_ECT in seen               # data segments opted in
    assert ECN_NOT_ECT in seen           # handshake stays not-ECT
    assert ECN_CE not in seen            # nothing congested, nothing marked


@pytest.mark.parametrize("cls,listener", [(TcpConnection, TcpListener),
                                          (QuicConnection, QuicListener)])
def test_ce_marks_close_the_loop_without_drops(cls, listener):
    net = Net()
    net.bottleneck.set_aqm(CoDelDiscipline(ecn=True))
    app = _bulk(net, cls, listener, ecn=True)
    net.sim.run(until=60)
    assert app.done_at is not None
    link = net.bottleneck
    # congestion became marks, not losses: every data drop avoided
    assert link.marked_ecn > 0
    assert net.sim.ecn_marks == link.marked_ecn
    assert link.dropped_aqm == 0
    # the sender actually responded: CE -> ECE echo -> cwnd cut
    assert app.conn.ecn_responses > 0


def test_ecn_responses_are_once_per_window():
    net = Net()
    conn = TcpConnection(sim=net.sim, demux=net.cd,
                         peer_addr=net.server.address, ecn=True)
    conn.cwnd = 16.0
    conn.snd_una = 50
    conn.snd_nxt = 100
    conn._on_ece()
    assert conn.cwnd == 8.0 and conn.ecn_responses == 1
    # further ECE inside the same window (acks still below the cut
    # point) must not halve again
    conn._on_ece()
    assert conn.cwnd == 8.0 and conn.ecn_responses == 1
    # once the window that saw the mark is fully acked, ECE bites again
    conn.snd_una = conn._ece_cut
    conn._on_ece()
    assert conn.cwnd == 4.0 and conn.ecn_responses == 2


def test_non_ecn_transport_under_ecn_aqm_still_gets_drops():
    # transport never negotiated ECN -> its packets are not-ECT -> an
    # ECN-enabled AQM falls back to dropping them (and the transfer
    # still completes through ordinary loss recovery)
    net = Net()
    net.bottleneck.set_aqm(CoDelDiscipline(ecn=True))
    app = _bulk(net, TcpConnection, TcpListener)
    net.sim.run(until=120)
    assert app.done_at is not None
    assert net.bottleneck.marked_ecn == 0
    assert net.bottleneck.dropped_aqm > 0
