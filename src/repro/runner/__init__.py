"""The parallel experiment runner: fan independent work over processes.

Experiments are sweeps of independent cells — E6 runs (arm, dwell)
cells, E7 runs (architecture, n_aps) cells — and the CLI runs whole
experiments back to back. Both levels are embarrassingly parallel as
long as every task derives its randomness from the task *key* rather
than from execution order, which this package enforces:

* :func:`derive_seed` — a stable seed from (root seed, task key), the
  per-task analogue of :meth:`repro.simcore.rng.RngRegistry.stream`'s
  name hashing: same key, same seed, in any process and any order.
* :func:`parallel_map` — ordered map over ``multiprocessing`` workers,
  falling back to a plain serial loop at ``jobs=1`` (the default), so
  parallel tables are byte-identical to serial ones.
* :class:`ParallelRunner` — the object the CLI drives: holds the job
  count and maps experiment- and cell-level task lists.
* :func:`supervised_map` / :class:`SupervisedRunner` — the same ordered
  map under supervision: per-task deadlines, worker heartbeats, crashed
  and hung-worker kill + bounded retry (byte-identical by stable
  reseeding), structured :class:`TaskFailure` records, and
  checkpoint/resume via :class:`SweepCheckpoint` (see ROBUSTNESS.md).

Telemetry composes (see OBSERVABILITY.md): when a
:data:`~repro.telemetry.hub.HUB` run is active, workers bracket each
task with their own hub run and ship the collected per-simulator
telemetry back for the parent hub to splice in, in task order — so
``--profile`` merges per-worker hot-path tables exactly as a serial run
would.
"""

from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.parallel import (
    ParallelRunner,
    WorkerTaskError,
    get_jobs,
    in_worker,
    parallel_map,
    set_jobs,
)
from repro.runner.seeds import derive_seed
from repro.runner.supervisor import (
    SupervisedRunner,
    SupervisorReport,
    TaskFailedError,
    TaskFailure,
    supervised_map,
)

__all__ = [
    "ParallelRunner",
    "SupervisedRunner",
    "SupervisorReport",
    "SweepCheckpoint",
    "TaskFailedError",
    "TaskFailure",
    "WorkerTaskError",
    "derive_seed",
    "get_jobs",
    "in_worker",
    "parallel_map",
    "set_jobs",
    "supervised_map",
]
