"""P-GW: packet gateway — IP anchor of the carrier EPC.

Allocates UE addresses from the carrier's pool and terminates the GTP
data path. In centralized LTE *every* user packet crosses this box
(Fig. 1's "all traffic tunnels through the EPC"); in dLTE its only
remaining duties — address allocation and tunnel termination — happen
inside the per-AP stub.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.nas import (
    CreateSessionRequest,
    CreateSessionResponse,
    DeleteSessionRequest,
)
from repro.net.addressing import AddressPool, IPv4Address, PoolExhausted
from repro.simcore.simulator import Simulator


class Pgw(ControlAgent):
    """Serial P-GW agent: session creation/deletion over S5."""

    def __init__(self, sim: Simulator, pool: AddressPool, name: str = "pgw",
                 service_time_s: float = 0.5e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.pool = pool
        self.s5: Optional[ControlChannel] = None
        self._teids = itertools.count(1000)
        self.sessions: Dict[str, IPv4Address] = {}   # ue_id -> address
        self.rejected = 0

    def connect_sgw(self, channel: ControlChannel) -> None:
        """Register the S5 channel toward the S-GW."""
        self.s5 = channel

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if isinstance(payload, CreateSessionRequest):
            self._create_session(payload)
        elif isinstance(payload, DeleteSessionRequest):
            self._delete_session(payload)

    def _create_session(self, request: CreateSessionRequest) -> None:
        try:
            address = self.pool.allocate()
        except PoolExhausted:
            self.rejected += 1
            self.s5.send(self, CreateSessionResponse(
                ue_id=request.ue_id, cause="no-addresses"))
            return
        self.sessions[request.ue_id] = address
        self.s5.send(self, CreateSessionResponse(
            ue_id=request.ue_id, ue_address=address,
            sgw_teid=next(self._teids), enb_teid=next(self._teids),
            cause="ok"))

    def _delete_session(self, request: DeleteSessionRequest) -> None:
        address = self.sessions.pop(request.ue_id, None)
        if address is not None:
            self.pool.release(address)
