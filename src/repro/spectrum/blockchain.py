"""The blockchain registry: grants on a public proof-of-work chain.

"Systems have also been proposed using public blockchains to remove all
centralization from the licensing process" (§4.3, ref [27] — Kotobi &
Bilén).

Grant requests enter a mempool; a block is mined every
``block_interval_s`` on average (exponential inter-block times, like
PoW); a grant is usable after ``confirmations`` blocks. Every AP holds a
chain replica, so *reads* (neighbor discovery) are local and instant,
and there is no node whose failure stops the registry — the exact
inverse of the SAS trade-off, which is what E10 shows.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simcore.simulator import Simulator
from repro.spectrum.grants import ApRecord, SpectrumGrant, in_contention
from repro.spectrum.registry import (
    DiscoverCallback,
    GrantCallback,
    SpectrumRegistry,
)


@dataclass(frozen=True)
class Block:
    """One mined block of grant transactions."""

    height: int
    prev_hash: str
    mined_at: float
    grants: Tuple[SpectrumGrant, ...]

    @property
    def block_hash(self) -> str:
        """Hash over height, parent, and grant ids (content-addressed)."""
        body = f"{self.height}:{self.prev_hash}:" + ",".join(
            g.grant_id for g in self.grants)
        return hashlib.sha256(body.encode()).hexdigest()


class BlockchainRegistry(SpectrumRegistry):
    """A PoW-paced grant ledger with local replicas.

    Args:
        block_interval_s: mean inter-block time (exponential draws).
        confirmations: blocks on top before a grant is considered final.
        propagation_s: block gossip delay to replicas.
    """

    def __init__(self, sim: Simulator, block_interval_s: float = 10.0,
                 confirmations: int = 2, propagation_s: float = 0.5) -> None:
        super().__init__(sim)
        if block_interval_s <= 0:
            raise ValueError("block interval must be positive")
        if confirmations < 1:
            raise ValueError("need at least one confirmation")
        self.block_interval_s = block_interval_s
        self.confirmations = confirmations
        self.propagation_s = propagation_s
        self.chain: List[Block] = []
        self._mempool: List[Tuple[ApRecord, GrantCallback]] = []
        self._confirmed: Dict[str, SpectrumGrant] = {}
        self._pending_confirm: List[Tuple[int, SpectrumGrant, GrantCallback]] = []
        self._grant_ids = itertools.count(1)
        self._mining = False

    def _rng(self):
        return self.sim.rng("blockchain-registry")

    # -- availability: there is no off switch ----------------------------------------

    def is_available(self) -> bool:
        return True

    # -- chain machinery -----------------------------------------------------------------

    @property
    def height(self) -> int:
        """Current chain height (number of blocks)."""
        return len(self.chain)

    def _ensure_mining(self) -> None:
        if self._mining:
            return
        self._mining = True
        delay = float(self._rng().exponential(self.block_interval_s))
        self.sim.schedule(delay, self._mine_block)

    def _mine_block(self) -> None:
        self._mining = False
        pool, self._mempool = self._mempool, []
        grants = []
        for record, callback in pool:
            grant = SpectrumGrant(grant_id=f"chain-{next(self._grant_ids)}",
                                  record=record, granted_at=self.sim.now)
            grants.append(grant)
            target_height = self.height + self.confirmations
            self._pending_confirm.append((target_height, grant, callback))
        prev_hash = self.chain[-1].block_hash if self.chain else "genesis"
        block = Block(height=self.height, prev_hash=prev_hash,
                      mined_at=self.sim.now, grants=tuple(grants))
        self.chain.append(block)
        # check confirmations newly satisfied
        still_waiting = []
        for target, grant, callback in self._pending_confirm:
            if self.height >= target + 1:
                self.sim.schedule(self.propagation_s, self._finalize,
                                  grant, callback)
            else:
                still_waiting.append((target, grant, callback))
        self._pending_confirm = still_waiting
        if self._mempool or self._pending_confirm:
            self._ensure_mining()

    def _finalize(self, grant: SpectrumGrant, callback: GrantCallback) -> None:
        self._confirmed[grant.record.ap_id] = grant
        self.grants_issued += 1
        self._m_grants.inc()
        callback(grant)

    # -- operations -------------------------------------------------------------------------

    def request_grant(self, record: ApRecord, callback: GrantCallback) -> None:
        self._mempool.append((record, callback))
        self._ensure_mining()

    def discover_neighbors(self, ap_id: str,
                           callback: DiscoverCallback) -> None:
        # local replica: answer at the next tick, no network latency
        self.queries_served += 1
        self._m_queries.inc()
        me = self._confirmed.get(ap_id)
        if me is None:
            self.sim.call_soon(callback, [])
            return
        neighbors = [g.record for other, g in self._confirmed.items()
                     if other != ap_id and in_contention(g.record, me.record)]
        self.sim.call_soon(callback, neighbors)

    def deregister(self, ap_id: str) -> None:
        # a revocation transaction would also ride the chain; the replica
        # view simply drops the grant once mined — modelled as immediate
        # local removal plus the usual propagation delay for peers.
        self._confirmed.pop(ap_id, None)

    def verify_chain(self) -> bool:
        """Check hash linkage of the whole chain (the integrity invariant)."""
        for prev, block in zip(self.chain, self.chain[1:]):
            if block.prev_hash != prev.block_hash:
                return False
        return not self.chain or self.chain[0].prev_hash == "genesis"

    @property
    def active_grants(self) -> int:
        """Confirmed grants visible on replicas."""
        return len(self._confirmed)
