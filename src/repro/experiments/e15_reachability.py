"""E15 (extension) — §4.2: public addressing vs NAT — who can host?

"Just like WiFi, access point owners maintain routing control since dLTE
terminates all LTE tunnels at the AP and outputs the client's
unencapsulated IP traffic" — and clients get "a new publicly routable IP
address." That makes a dLTE client a first-class Internet host: it can
*receive* connections — run a village web server, accept a peer-to-peer
call — which a client behind a typical NATed hotspot cannot.

Two arms, identical topology except the gateway:

* **dLTE (public addressing)** — the client holds a routable address
  from the AP's pool;
* **NATed hotspot** — the client sits behind a flow-NAT on the AP's
  single public address.

Measured per arm: outbound request/response success (both must work),
unsolicited inbound connection success (only public addressing), and the
NAT's drop counter.
"""

from __future__ import annotations

import ipaddress
from typing import Dict

from repro.metrics.tables import ResultTable
from repro.net import Host, InternetCore, NatRouter, Packet, Router
from repro.simcore.simulator import Simulator
from repro.transport.base import ConnectionState, TransportDemux
from repro.transport.quic import QuicConnection, QuicListener

IP = ipaddress.IPv4Address
REMOTE_ADDR = IP("203.0.113.10")


class ReachabilityHarness:
    """One client behind a gateway (NAT or plain), one remote peer."""

    def __init__(self, nat: bool, seed: int = 1) -> None:
        self.sim = Simulator(seed)
        sim = self.sim
        self.nat = nat
        self.internet = InternetCore(sim)
        public_gw_addr = IP("198.51.100.1")
        if nat:
            self.gateway = NatRouter(sim, "ap-gw", public_gw_addr,
                                     private_prefix="192.168.0.0/24")
            self.internet.attach(self.gateway, "198.51.100.0/24",
                                 access_delay_s=0.020)
            client_addr = IP("192.168.0.10")
        else:
            self.gateway = Router(sim, "ap-gw")
            self.internet.attach(self.gateway, "10.1.0.0/16",
                                 access_delay_s=0.020)
            client_addr = IP("10.1.0.10")
        self.client = Host(sim, "client", client_addr)
        self.client.connect_bidirectional(self.gateway, rate_bps=20e6,
                                          delay_s=5e-3)
        self.gateway.add_route(f"{client_addr}/32", "client")
        self.gateway.default_route = "internet"

        remote_edge = Router(sim, "remote-edge")
        self.internet.attach(remote_edge, "203.0.113.0/24",
                             access_delay_s=0.010)
        self.remote = Host(sim, "remote", REMOTE_ADDR)
        self.remote.connect_bidirectional(remote_edge, rate_bps=1e9,
                                          delay_s=0.5e-3)
        remote_edge.add_route(f"{REMOTE_ADDR}/32", "remote")

        self.client_demux = TransportDemux(self.client)
        self.remote_demux = TransportDemux(self.remote)

    @property
    def client_reachable_address(self) -> IP:
        """The address the outside world would have to dial."""
        if self.nat:
            return self.gateway.public_address
        return self.client.address

    def outbound_connect(self) -> bool:
        """Client dials the remote peer; True if established."""
        QuicListener(self.sim, self.remote_demux)
        conn = QuicConnection(sim=self.sim, demux=self.client_demux,
                              peer_addr=REMOTE_ADDR)
        conn.connect()
        self.sim.run(until=self.sim.now + 2.0)
        established = conn.state is ConnectionState.ESTABLISHED
        if established:
            conn.send_app_data(1200)
            self.sim.run(until=self.sim.now + 2.0)
            established = conn.bytes_acked >= 1200
        return established

    def inbound_connect(self) -> bool:
        """The remote peer dials the client; True if established."""
        QuicListener(self.sim, self.client_demux)
        conn = QuicConnection(sim=self.sim, demux=self.remote_demux,
                              peer_addr=self.client_reachable_address)
        conn.connect()
        self.sim.run(until=self.sim.now + 3.0)
        if conn.state is not ConnectionState.ESTABLISHED:
            return False
        conn.send_app_data(1200)
        self.sim.run(until=self.sim.now + 3.0)
        return conn.bytes_acked >= 1200


def run(seed: int = 1) -> ResultTable:
    """Outbound vs inbound connectivity per addressing model."""
    table = ResultTable(
        "E15: public addressing vs NAT — connection reachability",
        ["arm", "outbound_ok", "inbound_ok", "nat_unsolicited_drops"])
    for nat, label in ((False, "dLTE (public address)"),
                       (True, "NATed hotspot")):
        out_h = ReachabilityHarness(nat, seed)
        outbound = out_h.outbound_connect()
        in_h = ReachabilityHarness(nat, seed + 1)
        inbound = in_h.inbound_connect()
        drops = (in_h.gateway.unsolicited_drops
                 if isinstance(in_h.gateway, NatRouter) else 0)
        table.add_row(arm=label,
                      outbound_ok="yes" if outbound else "no",
                      inbound_ok="yes" if inbound else "no",
                      nat_unsolicited_drops=drops)
    return table
