"""Control-plane execution model: serial agents and delayed channels.

Control-plane entities (MME, HSS, gateways, stubs) are *serial
processors*: each inbound message waits in a FIFO and then occupies the
agent for a per-message service time. This is what makes centralization
measurable — one MME shared by 200 APs saturates under an attach storm
(queueing delay explodes), while 200 independent stubs do not (§4.1:
"each stub can be independent of others, so the one stub per site model
naturally scales").

A :class:`ControlChannel` connects two agents with a fixed one-way
latency and counts bytes, giving E7/E9 their control-load numbers
without dragging the full IP substrate into the control plane.

Queues are unbounded by default (the seed's infinite-patience model);
installing an :class:`~repro.epc.overload.OverloadPolicy` via
:meth:`ControlAgent.configure_overload` bounds the queue and sheds per
policy. Every offer and every shed is counted — ``enqueued``,
``processed``, ``shed``, ``shed_by_cause`` — so the control-plane
conservation law ``enqueued == processed + shed + in_flight`` holds at
every event boundary (see ``InvariantChecker.watch_agent``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple
from collections import deque

from repro.epc.nas import AttachRequest
from repro.epc.overload import CLASS_NEW_WORK, OverloadPolicy, message_class
from repro.simcore.simulator import Simulator


@dataclass(slots=True)
class ControlMessage:
    """Envelope: a NAS/S1AP/GTP-C payload plus reply routing."""

    payload: object
    sender: "ControlAgent"
    sent_at: float = 0.0
    queued_at: float = 0.0


class ControlAgent:
    """A named serial message processor.

    Subclasses implement :meth:`handle`. Metrics: messages processed,
    busy time, and peak queue depth — E7 reports all three.
    """

    def __init__(self, sim: Simulator, name: str,
                 service_time_s: float = 0.5e-3) -> None:
        if service_time_s < 0:
            raise ValueError("service time must be non-negative")
        self.sim = sim
        self.name = name
        self.service_time_s = service_time_s
        self._queue: Deque[ControlMessage] = deque()
        self._busy = False
        self._in_handle = False
        self.processed = 0
        self.busy_time_s = 0.0
        self.peak_queue_depth = 0
        #: conservation ledger: every message offered to (and accepted
        #: into) this agent's bookkeeping, including ones later shed.
        self.enqueued = 0
        self.shed = 0
        self.shed_by_cause: Dict[str, int] = {}
        #: bounded-queue policy; None (the default) keeps the seed's
        #: unbounded infinite-patience behavior byte for byte.
        self.overload: Optional[OverloadPolicy] = None
        self._m_processed = sim.metrics.counter("epc.agent.processed",
                                                agent=name)
        self._m_queue = sim.metrics.gauge("epc.agent.queue_depth", agent=name)
        self._m_wait = sim.metrics.histogram("epc.agent.queue_wait_s",
                                             agent=name)

    def configure_overload(self, policy: Optional[OverloadPolicy]) -> None:
        """Install (or clear) a bounded-queue/shedding policy."""
        self.overload = policy

    def enqueue(self, message: ControlMessage) -> None:
        """Accept an inbound message (called by channels).

        Re-entrancy audit (the kick-off below is a *direct* call): when
        the queue is idle, ``_serve_next()`` runs synchronously inside
        the caller's frame — which may be a handler's call chain. This
        is safe because ``_serve_next`` never executes user code: it
        only pops, records the wait, and posts ``_finish`` through
        ``sim.post_at``. And while this agent's own ``handle()`` is
        running (inside ``_finish``), ``_busy`` is still True, so a
        self-``enqueue`` from the handler can never re-enter
        ``_serve_next``; the assertion there guards that argument.
        Routing the kick through ``sim.post_at`` instead would insert
        an extra same-time event and reorder seeded schedules.
        """
        message.queued_at = self.sim.now
        self.enqueued += 1
        queue = self._queue
        policy = self.overload
        if policy is not None and not self._admit(message, policy):
            return
        queue.append(message)
        depth = len(queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
            sim = self.sim
            if depth > sim.agent_peak_queue:
                sim.agent_peak_queue = depth
        self._m_queue.set(depth)
        if not self._busy:
            self._serve_next()

    # -- overload protection ---------------------------------------------------

    def _admit(self, message: ControlMessage, policy: OverloadPolicy) -> bool:
        """Apply admission control and shedding; True if ``message`` may
        join the queue (which is then guaranteed below ``queue_limit``)."""
        queue = self._queue
        payload = message.payload
        limit = policy.admission_limit
        if (limit is not None and isinstance(payload, AttachRequest)
                and len(queue) + (1 if self._busy else 0) >= limit):
            # refuse new work before it costs service time; subclasses
            # with a reply path send the T3346-style congestion reject
            self._shed(message, "congestion")
            self._send_congestion_reject(message,
                                         policy.congestion_backoff_s)
            return False
        if len(queue) < policy.queue_limit:
            return True
        if policy.shed == "deadline":
            horizon = self.sim.now - policy.deadline_s
            stale = [m for m in queue if m.queued_at < horizon]
            if stale:
                for dead in stale:
                    queue.remove(dead)
                    self._shed(dead, "deadline")
                self._m_queue.set(len(queue))
            if len(queue) < policy.queue_limit:
                return True
        elif policy.shed == "priority":
            incoming = message_class(payload)
            if incoming < CLASS_NEW_WORK:
                # evict the youngest lowest-priority message iff it is
                # strictly less important than the arrival
                victim_idx, victim_class = -1, incoming
                for idx, queued in enumerate(queue):
                    cls = message_class(queued.payload)
                    if cls >= victim_class:
                        victim_idx, victim_class = idx, cls
                if victim_idx >= 0 and victim_class > incoming:
                    victim = queue[victim_idx]
                    del queue[victim_idx]
                    self._shed(victim, "priority")
                    self._m_queue.set(len(queue))
                    return True
        self._shed(message, "queue-full")
        return False

    def _shed(self, message: ControlMessage, cause: str) -> None:
        """Account one dropped message (never silently)."""
        self.shed += 1
        by_cause = self.shed_by_cause
        by_cause[cause] = by_cause.get(cause, 0) + 1
        sim = self.sim
        sim.agents_shed += 1
        sim.metrics.counter("epc.agent.shed", agent=self.name,
                            cause=cause).inc()
        sim.trace("overload", f"{self.name}: shed "
                  f"{type(message.payload).__name__}", cause=cause)

    def _shed_queue(self, cause: str) -> int:
        """Shed every waiting message (e.g. a crash); returns the count."""
        queue = self._queue
        n = len(queue)
        while queue:
            self._shed(queue.popleft(), cause)
        if n:
            self._m_queue.set(0)
        return n

    def _send_congestion_reject(self, message: ControlMessage,
                                backoff_s: float) -> None:
        """Tell the refused UE when to retry; base agents have no reply
        path, so this is a hook for MME/stub overrides."""

    # -- serving ---------------------------------------------------------------

    def _serve_next(self) -> None:
        assert not self._in_handle, \
            f"{self.name}: re-entrant _serve_next during handle()"
        queue = self._queue
        if not queue:
            self._busy = False
            return
        self._busy = True
        message = queue.popleft()
        self._m_queue.set(len(queue))
        sim = self.sim
        self._m_wait.observe(sim.now - message.queued_at)
        sim.post_at(sim.now + self.service_time_s, self._finish, message)

    def _finish(self, message: ControlMessage) -> None:
        self.busy_time_s += self.service_time_s
        self.processed += 1
        self._m_processed.inc()
        self._in_handle = True
        try:
            self.handle(message)
        finally:
            self._in_handle = False
        self._serve_next()

    @property
    def queue_depth(self) -> int:
        """Messages currently waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Messages accepted but not yet fully served: the waiting queue
        plus the one in service (conservation-law term)."""
        return len(self._queue) + (1 if self._busy else 0)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of elapsed time spent processing."""
        return self.busy_time_s / elapsed_s if elapsed_s > 0 else 0.0

    def handle(self, message: ControlMessage) -> None:
        """Process one message; override in concrete agents."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} q={len(self._queue)}>"


class ControlChannel:
    """A fixed-latency pipe between two agents, with byte accounting.

    A channel can be taken down (fault injection): while ``up`` is False
    every message offered in either direction is silently dropped and
    counted, which is how a severed S1/X2 path behaves from the control
    plane's point of view — requests just never come back.
    """

    def __init__(self, sim: Simulator, a: ControlAgent, b: ControlAgent,
                 one_way_delay_s: float, name: str = "") -> None:
        if one_way_delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.ends: Tuple[ControlAgent, ControlAgent] = (a, b)
        self.one_way_delay_s = one_way_delay_s
        self.name = name or f"{a.name}<->{b.name}"
        self.up = True
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self._m_messages = sim.metrics.counter("epc.channel.messages",
                                               channel=self.name)
        self._m_bytes = sim.metrics.counter("epc.channel.bytes",
                                            channel=self.name)
        self._m_dropped = sim.metrics.counter("epc.channel.dropped",
                                              channel=self.name)

    def set_up(self, up: bool) -> None:
        """Raise or cut the channel (both directions)."""
        if up != self.up:
            self.sim.trace("fault",
                           f"channel {self.name} {'up' if up else 'down'}")
        self.up = up

    def other_end(self, agent: ControlAgent) -> ControlAgent:
        """The peer of ``agent`` on this channel."""
        a, b = self.ends
        if agent is a:
            return b
        if agent is b:
            return a
        raise ValueError(f"{agent.name} is not an end of channel {self.name}")

    def send(self, sender: ControlAgent, payload: object) -> None:
        """Deliver ``payload`` to the other end after the channel delay."""
        receiver = self.other_end(sender)
        if not self.up:
            self.dropped += 1
            self._m_dropped.inc()
            self.sim.trace("drop", f"channel {self.name}: down",
                           payload=type(payload).__name__)
            return
        self.messages += 1
        size = getattr(payload, "size_bytes", 0)
        self.bytes += size
        self._m_messages.inc()
        self._m_bytes.inc(size)
        sim = self.sim
        message = ControlMessage(payload=payload, sender=sender,
                                 sent_at=sim.now)
        sim.post_at(sim.now + self.one_way_delay_s, receiver.enqueue, message)


class CallbackAgent(ControlAgent):
    """An agent whose handler is a plain callable (for tests and UEs)."""

    def __init__(self, sim: Simulator, name: str,
                 handler: Optional[Callable[[ControlMessage], None]] = None,
                 service_time_s: float = 0.0) -> None:
        super().__init__(sim, name, service_time_s)
        self._handler = handler

    def handle(self, message: ControlMessage) -> None:
        if self._handler is not None:
            self._handler(message)
