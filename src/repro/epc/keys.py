"""The dLTE published-key registry (§4.2).

"LTE's authentication relies on symmetric key encryption at the link
layer, so users can simply pre-publish their keys to allow any
associated dLTE AP to authenticate with them."

The registry is an Internet-hosted table of IMSI -> K for users who have
opted into open dLTE access. A stub core queries it on the first attach
of an unknown IMSI (paying one registry RTT) and caches the result, so
steady-state attaches are fully local. Publication is per-profile: a
user's carrier SIM stays private while their dLTE e-SIM identity is open
(the e-SIM multi-profile model the paper cites).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.epc.subscriber import SubscriberProfile
from repro.simcore.simulator import Simulator


class PublishedKeyRegistry:
    """A public IMSI->key table with a query latency.

    Lookups are asynchronous: callers pass a callback which fires after
    ``lookup_rtt_s`` of simulated time, mimicking an HTTPS query to a
    registry service. Synchronous :meth:`peek` exists for tests.
    """

    def __init__(self, sim: Simulator, lookup_rtt_s: float = 0.050) -> None:
        if lookup_rtt_s < 0:
            raise ValueError("lookup RTT must be non-negative")
        self.sim = sim
        self.lookup_rtt_s = lookup_rtt_s
        self._keys: Dict[str, bytes] = {}
        self.lookups = 0
        self.publishes = 0

    def publish(self, profile: SubscriberProfile) -> None:
        """Publish a profile's key; only ``published=True`` profiles allowed.

        The guard models user consent — carriers' private SIMs must never
        end up in the open registry.
        """
        if not profile.published:
            raise ValueError(
                f"profile {profile.imsi} is not marked published; refusing "
                f"to expose a private key")
        self._keys[profile.imsi] = profile.key
        self.publishes += 1

    def revoke(self, imsi: str) -> None:
        """Withdraw a published key (KeyError if absent)."""
        del self._keys[imsi]

    def lookup(self, imsi: str,
               callback: Callable[[Optional[bytes]], None]) -> None:
        """Query the registry; ``callback(key_or_None)`` after the RTT."""
        self.lookups += 1
        key = self._keys.get(imsi)
        self.sim.schedule(self.lookup_rtt_s, callback, key)

    def peek(self, imsi: str) -> Optional[bytes]:
        """Latency-free lookup for tests and reporting."""
        return self._keys.get(imsi)

    def __len__(self) -> int:
        return len(self._keys)
