"""Point-to-point links with rate, delay, drop-tail queues, and faults.

A link is the unit of backhaul modelling: the AP's Internet uplink, the
S1 path to a carrier EPC, the X2 path between peers. Serialization time
(size/rate) plus propagation delay plus queueing; a finite queue drops
from the tail, which is where "backhaul constrained" (E9) bites.

Links also carry the fault state the resilience experiments (E16) need:
an ``up`` flag (a down link drops everything offered to it and loses
whatever was queued or in flight) and a ``loss_rate`` (per-packet random
drops drawn from the link's own named RNG stream, so a run stays
reproducible from the seed). Drops are accounted *by cause* —
``dropped_overflow`` vs ``dropped_down`` vs ``dropped_loss`` — so
congestion can be told apart from failure.

Datapath fast lane (see PERFORMANCE.md): the link no longer schedules
two heap events per packet (serialization done + delivery). Because the
propagation delay is a per-link constant and serialization completions
are monotone, deliveries happen in send order — so a busy link keeps a
single live wake-up event aimed at the head of its in-flight deque and
drains every delivery that is due when it fires. Service completions
are pure float arithmetic (``done += tx``; ``deliver = done + delay``),
identical to the times the old per-event chain produced, and queued
packets are promoted into service *lazily* whenever the link is
touched. Net effect: one heap event per busy period segment instead of
two per packet, with byte-identical delivery times.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.net.packet import Packet
from repro.simcore.simulator import Simulator

_INF = float("inf")


class Link:
    """Unidirectional link delivering packets to a receive callback.

    Args:
        sim: the event kernel.
        rate_bps: serialization rate; ``float('inf')`` for ideal links.
        delay_s: propagation delay.
        queue_packets: drop-tail queue capacity (packets awaiting
            serialization); the packet in service is not counted.
        name: for hop recording and diagnostics.
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 queue_packets: int = 100, name: str = "link") -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive (use inf for ideal)")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.name = name
        self.receiver: Optional[Callable[[Packet], None]] = None
        #: packets waiting for the serializer (the drop-tail queue)
        self._egress: Deque[Packet] = deque()
        #: serialized packets in propagation: (deliver_at, packet),
        #: deliver_at monotone because delay is a per-link constant
        self._flight: Deque[Tuple[float, Packet]] = deque()
        #: when the packet currently in service finishes serializing;
        #: the link is busy iff this is in the future
        self._service_done = 0.0
        #: True while the one live wake-up event (aimed at the flight
        #: head's delivery) is queued; wake-ups are never cancelled, so
        #: they ride the simulator's handle-free fast path
        self._wakeup = False
        # fault state
        self.up = True
        self.loss_rate = 0.0
        # counters; ``dropped`` is the running total across all causes.
        # ``offered`` and ``in_flight`` close the conservation law the
        # invariant checker audits: at any instant
        # ``offered == delivered + dropped + in_flight``.
        self.offered = 0
        self.in_flight = 0
        self.delivered = 0
        self.dropped = 0
        self.dropped_overflow = 0
        self.dropped_down = 0
        self.dropped_loss = 0
        self.bytes_sent = 0
        #: the link's own loss stream, fetched once instead of a
        #: per-send f-string + registry lookup
        self._loss_rng = sim.rng(f"link-loss:{name}")
        # telemetry instruments, fetched once so the hot path is an
        # attribute access plus an integer add
        metrics = sim.metrics
        self._m_delivered = metrics.counter("net.link.delivered", link=name)
        self._m_bytes = metrics.counter("net.link.bytes_sent", link=name)
        self._m_queue = metrics.gauge("net.link.queue_depth", link=name)
        self._m_drops = {
            cause: metrics.counter("net.link.dropped", link=name, cause=cause)
            for cause in ("overflow", "down", "loss")
        }

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Attach the downstream receive function."""
        self.receiver = receiver

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (excludes the one being serialized)."""
        if self._egress and self._service_done <= self.sim.now:
            self._advance(self.sim.now)
        return len(self._egress)

    # -- fault state -------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Raise or cut the link; cutting loses every queued packet."""
        if up == self.up:
            return
        self.up = up
        self.sim.trace("fault", f"link {self.name} {'up' if up else 'down'}")
        if not up:
            # promote first: a serialization that already started stays
            # in flight and is dropped at its delivery time, exactly as
            # the old per-event chain behaved
            self._advance(self.sim.now)
            if self._egress:
                lost = len(self._egress)
                self._egress.clear()
                self.dropped += lost
                self.dropped_down += lost
                self.in_flight -= lost
                self._m_drops["down"].inc(lost)
                self._m_queue.set(0)

    def set_loss_rate(self, loss_rate: float) -> None:
        """Set the per-packet drop probability (0 disables loss)."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if loss_rate != self.loss_rate:
            self.sim.trace("fault", f"link {self.name} loss={loss_rate:g}")
        self.loss_rate = loss_rate

    def _drop(self, cause: str) -> bool:
        self.dropped += 1
        if cause == "overflow":
            self.dropped_overflow += 1
        elif cause == "down":
            self.dropped_down += 1
        else:
            self.dropped_loss += 1
        self._m_drops[cause].inc()
        self.sim.trace("drop", f"link {self.name}: {cause}")
        return False

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet; returns False (and counts a drop by cause)
        when the link is down, the loss draw fails, or the queue is full."""
        if self.receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        self.offered += 1
        if not self.up:
            return self._drop("down")
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            return self._drop("loss")
        now = self.sim.now
        if self._egress and self._service_done <= now:
            self._advance(now)
        if self._service_done > now:  # serializer busy: join the queue
            egress = self._egress
            if len(egress) >= self.queue_packets:
                return self._drop("overflow")
            egress.append(packet)
            self.in_flight += 1
            self._m_queue.set(len(egress))
            return True
        self.in_flight += 1
        self._start_service(now, packet)
        return True

    def _start_service(self, start: float, packet: Packet) -> None:
        """Begin serializing ``packet`` at ``start`` and push its flight.

        The float chain (``done = start + tx``, ``deliver = done +
        delay``) reproduces the exact timestamps the old
        serialize/transmitted/deliver event pair computed.
        """
        size = packet.size_bytes
        rate = self.rate_bps
        done = start + (size * 8.0 / rate if rate != _INF else 0.0)
        self._service_done = done
        self.bytes_sent += size
        self._m_bytes.inc(size)
        flight = self._flight
        flight.append((done + self.delay_s, packet))
        if not self._wakeup:
            self._wakeup = True
            self.sim.post_at(flight[0][0], self._drain)

    def _advance(self, now: float) -> None:
        """Promote queued packets whose service has started by ``now``."""
        egress = self._egress
        while egress and self._service_done <= now:
            packet = egress.popleft()
            self._start_service(self._service_done, packet)
            self._m_queue.set(len(egress))

    def _drain(self) -> None:
        """Wake-up event: hand over every delivery that is due."""
        self._wakeup = False
        now = self.sim.now
        flight = self._flight
        receiver = self.receiver
        while flight and flight[0][0] <= now:
            _at, packet = flight.popleft()
            self.in_flight -= 1
            if not self.up:
                self._drop("down")  # cut mid-flight
                continue
            self.delivered += 1
            self._m_delivered.inc()
            receiver(packet)
        self._advance(now)
        if flight and not self._wakeup:
            self._wakeup = True
            self.sim.post_at(flight[0][0], self._drain)

    def __repr__(self) -> str:
        rate = ("inf" if self.rate_bps == float("inf")
                else f"{self.rate_bps/1e6:g}Mbps")
        return (f"<Link {self.name} {rate} {self.delay_s*1e3:g}ms "
                f"q={self.queue_depth}/{self.queue_packets}>")
