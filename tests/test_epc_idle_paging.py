"""Unit tests for idle mode, paging, and service request (EPC extension)."""

import pytest

from repro.enodeb import EnbControlRelay
from repro.epc import CentralizedEpc, UserEquipment
from repro.epc.agents import ControlChannel
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState
from repro.net import AddressPool
from repro.simcore import Simulator

AIR = 0.005
BACKHAUL = 0.030


def _attached_ue(n_enbs=3, seed=1):
    sim = Simulator(seed)
    epc = CentralizedEpc(sim, AddressPool("10.0.0.0/16"))
    enbs = []
    for i in range(n_enbs):
        enb = EnbControlRelay(sim, f"enb{i}")
        channel = epc.connect_enb(enb, backhaul_delay_s=BACKHAUL)
        enb.connect_core(channel)
        enbs.append(enb)
    profile = make_profile("001010000012345")
    epc.provision(profile)
    ue = UserEquipment(sim, profile)
    air = ControlChannel(sim, ue, enbs[0], AIR, "air")
    ue.connect_air(air)
    enbs[0].attach_ue(ue.ue_id, air)
    ue.start_attach()
    sim.run(until=5.0)
    assert ue.state is UeState.ATTACHED
    return sim, epc, enbs, ue


def test_go_idle_releases_ecm():
    sim, epc, enbs, ue = _attached_ue()
    assert ue.ecm_connected
    ue.go_idle()
    sim.run(until=sim.now + 1.0)
    assert not ue.ecm_connected
    assert not epc.mme.contexts[ue.ue_id].ecm_connected
    assert ue.state is UeState.ATTACHED  # still attached, just idle


def test_go_idle_requires_attached():
    sim = Simulator(0)
    ue = UserEquipment(sim, make_profile("001010000000001"))
    with pytest.raises(RuntimeError):
        ue.go_idle()


def test_go_idle_idempotent():
    sim, epc, enbs, ue = _attached_ue()
    ue.go_idle()
    sim.run(until=sim.now + 1.0)
    ue.go_idle()  # no-op, no crash
    sim.run(until=sim.now + 1.0)
    assert not ue.ecm_connected


def test_paging_fans_out_to_all_enbs():
    sim, epc, enbs, ue = _attached_ue(n_enbs=5)
    ue.go_idle()
    sim.run(until=sim.now + 1.0)
    pages = epc.mme.page(ue.ue_id)
    assert pages == 5
    assert epc.mme.pages_sent == 5


def test_paging_connected_ue_is_noop():
    sim, epc, enbs, ue = _attached_ue()
    assert epc.mme.page(ue.ue_id) == 0
    assert epc.mme.pages_sent == 0


def test_paging_unknown_ue_is_noop():
    sim, epc, enbs, ue = _attached_ue()
    assert epc.mme.page("ghost") == 0


def test_page_wakes_ue_via_service_request():
    sim, epc, enbs, ue = _attached_ue()
    ue.go_idle()
    sim.run(until=sim.now + 1.0)
    resumed = []
    ue.on_service_resumed = lambda u: resumed.append(sim.now)
    t0 = sim.now
    epc.mme.page(ue.ue_id)
    sim.run(until=t0 + 5.0)
    assert ue.ecm_connected
    assert epc.mme.contexts[ue.ue_id].ecm_connected
    assert epc.mme.service_requests == 1
    assert resumed and resumed[0] > t0
    # page down + SR up + accept down: 3 backhaul crossings + air legs
    wake = ue.service_resumed_at - t0
    assert 3 * BACKHAUL < wake < 3 * BACKHAUL + 0.05


def test_only_camped_enb_delivers_page():
    """Pages fan out everywhere but only the serving eNB reaches the UE."""
    sim, epc, enbs, ue = _attached_ue(n_enbs=4)
    ue.go_idle()
    sim.run(until=sim.now + 1.0)
    epc.mme.page(ue.ue_id)
    sim.run(until=sim.now + 5.0)
    assert ue.pages_received == 1  # not 4


def test_wake_cycle_repeats():
    sim, epc, enbs, ue = _attached_ue()
    for _ in range(3):
        ue.go_idle()
        sim.run(until=sim.now + 1.0)
        epc.mme.page(ue.ue_id)
        sim.run(until=sim.now + 5.0)
        assert ue.ecm_connected
    assert epc.mme.service_requests == 3
