"""Wire an :class:`InvariantChecker` onto whole simulated networks.

The checker itself audits individual components; experiments build
hundreds of them. These walkers discover everything worth watching:

* :func:`watch_topology` — breadth-first walk of the packet graph from
  a set of root nodes, following each link's receive callback to its
  owning node: every :class:`~repro.net.links.Link` gets the
  conservation check, every :class:`~repro.net.nat.NatRouter` the NAT
  accounting check, and every node carrying a
  :class:`~repro.net.tunnel.TunnelEndpoint` joins the aggregate GTP
  conservation law.
* :func:`watch_federation` — spectrum-layer laws over a dLTE
  federation: registry grant sanity (per-AP uniqueness, ordered lease
  windows, density admission honored) and PRB-slice non-overlap per
  band between alive, contending APs whose coordinators have converged.
* :func:`watch_network` — everything above plus the clock and every
  UE's NAS legality, for any of the :mod:`repro.core.network` builds
  (dLTE, centralized, WiFi).
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.invariants.checks import InvariantChecker
from repro.net.nat import NatRouter
from repro.spectrum.grants import in_contention

__all__ = ["iter_control_agents", "watch_federation", "watch_network",
           "watch_topology"]


def iter_control_agents(net: Any) -> List[Any]:
    """Every ControlAgent a built network owns, deterministically ordered.

    Covers both architectures: UEs, per-AP stubs and eNB relays (dLTE),
    and the centralized core's MME/HSS/S-GW/P-GW plus its eNB relays —
    the population the control-plane conservation law audits and E17's
    shed accounting sums over.
    """
    agents: List[Any] = []
    for name in sorted(getattr(net, "ues", {})):
        agents.append(net.ues[name])
    aps = getattr(net, "aps", None)
    if aps:
        for ap_id in sorted(aps):
            ap = aps[ap_id]
            for attr in ("stub", "enb"):
                agent = getattr(ap, attr, None)
                if agent is not None:
                    agents.append(agent)
    epc = getattr(net, "epc", None)
    if epc is not None:
        for attr in ("mme", "hss", "sgw", "pgw"):
            agent = getattr(epc, attr, None)
            if agent is not None:
                agents.append(agent)
    relays = getattr(net, "enb_relays", None)
    if relays:
        for name in sorted(relays):
            agents.append(relays[name])
    return agents


def _iter_nodes(roots: Iterable[Any]) -> List[Any]:
    """BFS over the packet graph: follow links to their receiving nodes."""
    seen: List[Any] = []
    seen_ids = set()
    frontier = [node for node in roots if node is not None]
    while frontier:
        node = frontier.pop()
        if id(node) in seen_ids:
            continue
        seen_ids.add(id(node))
        seen.append(node)
        for link in getattr(node, "links", {}).values():
            neighbor = getattr(link.receiver, "__self__", None)
            if neighbor is not None and id(neighbor) not in seen_ids:
                frontier.append(neighbor)
    return seen


def watch_topology(checker: InvariantChecker, roots: Iterable[Any]) -> int:
    """Watch every link/NAT/tunnel reachable from ``roots``.

    Returns the number of nodes discovered.
    """
    nodes = _iter_nodes(roots)
    for node in nodes:
        for link in getattr(node, "links", {}).values():
            checker.watch_link(link)
        if isinstance(node, NatRouter):
            checker.watch_nat(node)
        tunnels = getattr(node, "tunnels", None)
        if tunnels is not None and hasattr(tunnels, "encapsulated"):
            checker.watch_tunnel(tunnels)
    return len(nodes)


def watch_federation(checker: InvariantChecker, aps: dict,
                     registry: Any = None) -> None:
    """Spectrum laws over a dLTE federation (and its registry).

    * registry sanity: at most one active grant per AP (per band), and
      every grant's lease window is ordered (``granted_at <= expires``);
    * density admission: when the registry enforces
      ``max_density_per_domain``, the active population of any AP's
      contention domain never exceeds it;
    * PRB non-overlap: two *alive* APs holding active grants on the
      same band, inside one RF contention domain, whose coordinators
      have both converged on a proper slice, must own disjoint PRBs —
      the §4.3 fair-sharing contract the peer monitor is supposed to
      restore after every crash and rejoin.
    """

    def registry_check() -> List[str]:
        problems = []
        grants = getattr(registry, "_grants", None)
        if grants is None:
            return problems
        # SAS keeps {ap_id: grant}; the federated registry nests the
        # same shape per region — flatten either into one view.
        flat: dict = {}
        for key, value in grants.items():
            if isinstance(value, dict):
                flat.update(value)
            else:
                flat[key] = value
        now = checker.sim.now
        active = {ap_id: grant for ap_id, grant in flat.items()
                  if grant.active_at(now)}
        for ap_id, grant in active.items():
            if grant.record.ap_id != ap_id:
                problems.append(
                    f"grant {grant.grant_id} filed under {ap_id!r} but "
                    f"names {grant.record.ap_id!r}")
            if (grant.expires_at is not None
                    and grant.expires_at < grant.granted_at):
                problems.append(
                    f"grant {grant.grant_id}: lease window inverted "
                    f"({grant.granted_at} .. {grant.expires_at})")
        density = getattr(registry, "max_density_per_domain", None)
        if density is not None:
            for ap_id, grant in active.items():
                crowd = sum(
                    1 for other in active.values()
                    if in_contention(other.record, grant.record))
                if crowd > density:
                    problems.append(
                        f"{ap_id}'s contention domain holds {crowd} "
                        f"active grants > admission cap {density}")
        return problems

    if registry is not None:
        checker.register("spectrum-registry",
                         type(registry).__name__, registry_check)

    def slice_check() -> List[str]:
        problems = []
        eligible = []
        for ap in aps.values():
            if not getattr(ap, "alive", True) or not ap.grant_active:
                continue
            cell = ap.cell
            if cell.allowed_prbs == cell.grid.all_prbs:
                continue  # coordinator not (re)converged yet
            eligible.append(ap)
        for i, a in enumerate(eligible):
            for b in eligible[i + 1:]:
                if a.band.name != b.band.name:
                    continue
                if not in_contention(a.record, b.record):
                    continue
                overlap = a.cell.allowed_prbs & b.cell.allowed_prbs
                if overlap:
                    problems.append(
                        f"{a.ap_id} and {b.ap_id} share {len(overlap)} "
                        f"PRBs on band {a.band.name} inside one "
                        f"contention domain")
        return problems

    checker.register("spectrum-non-overlap", "federation", slice_check)


def watch_network(net: Any, checker: InvariantChecker = None,
                  period_s: float = 0.5) -> InvariantChecker:
    """Watch everything in a built network; arms the periodic sweep.

    Works for :class:`~repro.core.network.DLTENetwork`,
    :class:`CentralizedLTENetwork`, and :class:`WiFiNetwork` — anything
    exposing the `_BaseNetwork` surface (``sim``, ``internet``,
    ``ue_hosts``) plus optional ``aps``/``ues``/``spectrum_registry``.
    """
    if checker is None:
        checker = InvariantChecker(net.sim)
    checker.watch_clock()
    roots = [net.internet, getattr(net, "server", None),
             getattr(net, "server_edge", None),
             getattr(net, "epc_data", None),
             getattr(net, "epc_router", None)]
    roots.extend(net.ue_hosts.values())
    aps = getattr(net, "aps", None)
    if aps:
        roots.extend(ap.router for ap in aps.values())
    enb_data = getattr(net, "enb_data", None)
    if enb_data:
        roots.extend(enb_data.values())
    watch_topology(checker, roots)
    for ue in getattr(net, "ues", {}).values():
        checker.watch_ue(ue)
    for agent in iter_control_agents(net):
        checker.watch_agent(agent)
    if aps:
        watch_federation(checker, aps,
                         registry=getattr(net, "spectrum_registry", None))
    checker.arm(period_s)
    return checker
