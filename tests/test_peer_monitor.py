"""Unit tests for peer liveness and spectrum reclamation (§4.3 churn)."""

import pytest

from repro.coordination import FairSharingCoordinator, PeerMonitor, X2Endpoint
from repro.phy.resource_grid import ResourceGrid
from repro.simcore import Simulator


def _federation(sim, n, delay=0.02, heartbeat_s=1.0):
    endpoints = [X2Endpoint(sim, f"ap{i}") for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            endpoints[i].connect_peer(endpoints[j], one_way_delay_s=delay)
    coordinators = [FairSharingCoordinator(ep, ResourceGrid(10e6))
                    for ep in endpoints]
    monitors = [PeerMonitor(sim, ep, coord, heartbeat_s=heartbeat_s)
                for ep, coord in zip(endpoints, coordinators)]
    for coord in coordinators:
        coord.announce()
    for monitor in monitors:
        monitor.start()
    return endpoints, coordinators, monitors


def test_healthy_federation_loses_nobody():
    sim = Simulator(1)
    endpoints, coords, monitors = _federation(sim, 3)
    sim.run(until=30.0)
    assert all(m.peers_lost == 0 for m in monitors)
    assert all(len(ep.peer_ids) == 2 for ep in endpoints)
    assert all(m.heartbeats_sent >= 25 for m in monitors)


def test_dead_peer_detected_and_spectrum_reclaimed():
    sim = Simulator(1)
    endpoints, coords, monitors = _federation(sim, 3, heartbeat_s=1.0)
    sim.run(until=5.0)
    assert all(len(c.my_prbs) in (16, 17) for c in coords)  # 3-way split

    monitors[2].stop()            # ap2's owner unplugs the box
    endpoints[2].handlers.clear()  # it no longer even processes X2

    sim.run(until=20.0)
    # both survivors noticed within a few heartbeats
    assert monitors[0].peers_lost == 1
    assert monitors[1].peers_lost == 1
    assert "ap2" not in endpoints[0].peer_ids
    assert "ap2" not in endpoints[1].peer_ids
    # and reclaimed its third of the grid
    assert len(coords[0].my_prbs) == 25
    assert len(coords[1].my_prbs) == 25
    assert not (coords[0].my_prbs & coords[1].my_prbs)


def test_detection_latency_bounded():
    sim = Simulator(2)
    endpoints, coords, monitors = _federation(sim, 2, heartbeat_s=1.0)
    sim.run(until=3.0)
    monitors[1].stop()
    endpoints[1].handlers.clear()
    death_time = sim.now
    lost_at = []
    monitors[0].on_peer_lost = lambda peer: lost_at.append(sim.now)
    sim.run(until=death_time + 10.0)
    assert lost_at, "peer loss never detected"
    detection = lost_at[0] - death_time
    # miss limit (3) x heartbeat (1 s), plus one interval of slack
    assert detection <= 4.0 + 0.1


def test_any_x2_traffic_counts_as_liveness():
    sim = Simulator(3)
    endpoints, coords, monitors = _federation(sim, 2, heartbeat_s=1.0)
    sim.run(until=2.0)
    # ap1 stops heartbeating but keeps sending claims (busy, not dead)
    monitors[1].stop()

    def keep_claiming():
        while True:
            coords[1].announce()
            yield sim.timeout(1.0)

    sim.process(keep_claiming())
    sim.run(until=20.0)
    assert monitors[0].peers_lost == 0
    assert "ap1" in endpoints[0].peer_ids


def test_monitor_validates():
    sim = Simulator(0)
    ep = X2Endpoint(sim, "x")
    with pytest.raises(ValueError):
        PeerMonitor(sim, ep, heartbeat_s=0)
    with pytest.raises(ValueError):
        PeerMonitor(sim, ep, missed_limit=0)


def test_start_idempotent():
    sim = Simulator(0)
    ep = X2Endpoint(sim, "x")
    monitor = PeerMonitor(sim, ep, heartbeat_s=1.0)
    monitor.start()
    monitor.start()
    sim.run(until=5.0)
    # one heartbeat process, not two
    assert monitor.heartbeats_sent <= 6


def test_recovered_peer_readmitted_and_split_reconverges():
    sim = Simulator(5)
    endpoints, coords, monitors = _federation(sim, 3, heartbeat_s=1.0)
    sim.run(until=5.0)

    monitors[2].stop()             # ap2 loses power
    saved = list(endpoints[2].handlers)
    endpoints[2].handlers.clear()
    sim.run(until=15.0)
    assert monitors[0].is_dead("ap2") and monitors[1].is_dead("ap2")
    assert len(coords[0].my_prbs) == 25  # survivors split 2 ways

    # power restored: re-peer, re-announce, resume heartbeating
    endpoints[2].handlers.extend(saved)
    rejoined = []
    monitors[0].on_peer_rejoined = lambda peer: rejoined.append(
        (sim.now, peer))
    for i in (0, 1):
        endpoints[2].connect_peer(endpoints[i], one_way_delay_s=0.02)
    coords[2].announce()
    monitors[2].start()
    sim.run(until=30.0)

    assert monitors[0].peers_rejoined == 1
    assert monitors[1].peers_rejoined == 1
    assert not monitors[0].is_dead("ap2")
    assert rejoined and rejoined[0][1] == "ap2"
    # the restarted monitor must not falsely declare the (stale-stamped)
    # survivors dead on its first liveness check
    assert monitors[2].peers_lost == 0
    # shares reconverged to the equal 3-way split, still disjoint
    assert all(len(c.my_prbs) in (16, 17) for c in coords)
    assert len(coords[0].my_prbs | coords[1].my_prbs
               | coords[2].my_prbs) == 50


def test_monitor_restart_retires_stale_process():
    sim = Simulator(6)
    endpoints, coords, monitors = _federation(sim, 2, heartbeat_s=1.0)
    sim.run(until=2.5)
    # stop and immediately restart, inside the old process's pending
    # heartbeat timeout: only one heartbeat loop may survive
    monitors[0].stop()
    monitors[0].start()
    before = monitors[0].heartbeats_sent
    sim.run(until=12.5)
    assert monitors[0].heartbeats_sent - before <= 11


def test_last_heard_tracking():
    sim = Simulator(4)
    endpoints, coords, monitors = _federation(sim, 2, heartbeat_s=1.0)
    sim.run(until=5.0)
    heard = monitors[0].last_heard_s("ap1")
    assert heard is not None and heard > 3.0
    assert monitors[0].last_heard_s("stranger") is None
