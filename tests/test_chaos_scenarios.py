"""Tests for the deterministic chaos-schedule composer (repro.faults).

Scenarios must be pure functions of (name, network, start time): same
inputs, same fault schedule. Each storm is exercised on a small dLTE
federation with the invariant layer armed — the simulation must stay
internally consistent while being broken on purpose.
"""

import pytest

from repro.core.network import CentralizedLTENetwork, DLTENetwork
from repro.faults import (
    FaultInjector,
    SCENARIOS,
    compose_scenario,
    get_scenario,
    list_scenarios,
    prepare_scenario,
)
from repro.faults.scenarios import (
    CASCADE_OUTAGE_S,
    CASCADE_STEP_S,
    FLAP_CYCLES,
    FLAP_DOWN_S,
    FLAP_UP_S,
    SAS_OUTAGE_S,
    SCENARIO_LEASE_S,
)
from repro.invariants import watch_network
from repro.workloads import RuralTown

TOWN = RuralTown(radius_m=1500, n_ues=6, n_aps=2, seed=5)


def _dlte(scenario=None):
    net = DLTENetwork.build(TOWN, seed=5)
    if scenario:
        prepare_scenario(scenario, net)
    return net, FaultInjector(net.sim)


# -- catalog ------------------------------------------------------------------------


def test_catalog_lists_all_three_storms():
    assert list_scenarios() == ["cascading-stub-crashes",
                                "flapping-backhaul",
                                "sas-outage-during-lease-renewal"]
    for name in list_scenarios():
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.description


def test_unknown_scenario_names_the_catalog():
    with pytest.raises(ValueError, match="cascading-stub-crashes"):
        get_scenario("meteor-strike")


# -- determinism --------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_schedule_is_a_pure_function_of_inputs(name):
    plans = []
    for _ in range(2):
        net, injector = _dlte(scenario=name)
        plans.append(compose_scenario(name, net, injector, start_s=4.0))
    assert plans[0] == plans[1]
    assert plans[0].start_s == 4.0
    assert plans[0].end_s >= plans[0].start_s


# -- flapping backhaul --------------------------------------------------------------


def test_flapping_backhaul_hits_busiest_ap_both_directions():
    net, injector = _dlte()
    plan = compose_scenario("flapping-backhaul", net, injector, start_s=2.0)
    assert len(plan.faults) == 2  # uplink and downlink of one backhaul
    assert len(plan.victims) == 1
    assert plan.victims[0] in net.aps
    assert plan.duration_s == pytest.approx(
        FLAP_CYCLES * (FLAP_DOWN_S + FLAP_UP_S))
    victim_router = net.aps[plan.victims[0]].router
    link = net.internet.links[victim_router.name]
    net.sim.run(until=plan.start_s + FLAP_DOWN_S / 2)
    assert not link.up  # first down-phase
    net.sim.run(until=plan.end_s + 0.1)
    assert link.up  # healed after the last cycle


def test_flapping_backhaul_on_centralized_attacks_epc_uplink():
    net = CentralizedLTENetwork.build(TOWN, seed=5)
    injector = FaultInjector(net.sim)
    plan = compose_scenario("flapping-backhaul", net, injector, start_s=2.0)
    assert len(plan.faults) == 2
    assert plan.victims == ()  # every site hairpins: blast radius is global


# -- cascading stub crashes ---------------------------------------------------------


def test_cascade_staggers_every_ap_with_overlap():
    net, injector = _dlte()
    plan = compose_scenario("cascading-stub-crashes", net, injector,
                            start_s=3.0)
    assert plan.victims == tuple(sorted(net.aps))
    assert len(plan.faults) == len(net.aps)
    # the stagger is shorter than the outage: windows overlap by design
    assert CASCADE_STEP_S < CASCADE_OUTAGE_S
    assert plan.end_s == pytest.approx(
        3.0 + (len(net.aps) - 1) * CASCADE_STEP_S + CASCADE_OUTAGE_S)


def test_cascade_runs_clean_under_invariants():
    # the hard case that exposed the rejoin split-brain bugs: crash the
    # sites in a rolling wave, let them restart, and demand the
    # federation reconverges with every conservation law intact
    net, injector = _dlte()
    checker = watch_network(net)
    plan = compose_scenario("cascading-stub-crashes", net, injector,
                            start_s=4.0)
    net.run(duration_s=plan.end_s + 20.0)
    checker.verify()
    assert all(ap.alive for ap in net.aps.values())


# -- SAS outage during lease renewal ------------------------------------------------


def test_sas_outage_lapses_and_recovers_leases():
    net, injector = _dlte(scenario="sas-outage-during-lease-renewal")
    assert net.spectrum_registry.lease_s == SCENARIO_LEASE_S
    checker = watch_network(net)
    plan = compose_scenario("sas-outage-during-lease-renewal", net,
                            injector, start_s=4.0)
    assert plan.faults == ("sas-outage",)
    assert plan.duration_s == pytest.approx(SAS_OUTAGE_S)
    # registration happens at t~0, well before the outage at t=4; the
    # outage outlives the lease, so every grant must lapse mid-storm ...
    net.run(duration_s=plan.end_s - 1.0)
    assert not any(ap.grant_active for ap in net.aps.values())
    # ... and re-registration restores service after the registry returns
    net.sim.run(until=plan.end_s + 2 * SCENARIO_LEASE_S)
    assert all(ap.grant_active for ap in net.aps.values())
    checker.verify()


def test_sas_outage_is_empty_plan_on_centralized():
    # licensed spectrum, no SAS dependency: the empty plan is the finding
    net = CentralizedLTENetwork.build(TOWN, seed=5)
    prepare_scenario("sas-outage-during-lease-renewal", net)
    injector = FaultInjector(net.sim)
    plan = compose_scenario("sas-outage-during-lease-renewal", net,
                            injector, start_s=4.0)
    assert plan.faults == ()
    assert plan.duration_s == 0.0
