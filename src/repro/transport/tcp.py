"""TCP+TLS: the legacy transport that breaks under dLTE mobility.

The model captures the three properties E6 depends on:

1. Connection setup costs 2 RTTs before application data (SYN/SYN-ACK,
   then the TLS 1.3 flight).
2. The connection is named by its 4-tuple: when the client's address
   changes, segments from the new address no longer match, the server
   stays silent, and the client only learns via RTO expiry.
3. Recovery is a *new* connection: full handshake plus slow-start from
   the initial window.
"""

from __future__ import annotations

from typing import Dict

from repro.net.addressing import IPv4Address
from repro.net.packet import Packet
from repro.transport.base import (
    ConnectionState,
    HEADER_BYTES,
    Listener,
    TransportConnection,
    TransportDemux,
)


class TcpConnection(TransportConnection):
    """One side of a TCP(+TLS 1.3) connection."""

    #: RTO expiries on a migrated path before declaring the connection dead.
    BROKEN_AFTER_RTOS = 1

    def __init__(self, *args, tls: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.tls = tls
        self.local_addr_at_setup = self.host.address
        self._address_changed = False
        self._rtos_since_change = 0

    # -- handshake -------------------------------------------------------------

    def connect(self) -> None:
        if self.state is not ConnectionState.IDLE:
            raise RuntimeError(f"connect() on {self.state.value} connection")
        self.state = ConnectionState.CONNECTING
        self.local_addr_at_setup = self.host.address
        self._emit({"kind": "syn"})

    def accept(self, packet: Packet) -> None:
        self.state = ConnectionState.CONNECTING
        self.local_addr_at_setup = self.host.address
        self._emit({"kind": "synack"})

    def _on_synack(self, packet: Packet, header: Dict) -> None:
        if self.state is not ConnectionState.CONNECTING:
            return
        if self.tls:
            self._emit({"kind": "tls_hello", "size_hint": 300}, size=300)
        else:
            self._emit({"kind": "hs_done"})
            self._become_established()

    def _on_tls_hello(self, packet: Packet, header: Dict) -> None:
        # server: TLS ServerHello..Finished flight, then established
        self._emit({"kind": "tls_fin"}, size=2000 + HEADER_BYTES)
        self._become_established()

    def _on_tls_fin(self, packet: Packet, header: Dict) -> None:
        # client: handshake complete
        if self.state is ConnectionState.CONNECTING:
            self._become_established()

    def _on_hs_done(self, packet: Packet, header: Dict) -> None:
        if self.state is ConnectionState.CONNECTING:
            self._become_established()

    # -- the 4-tuple check -------------------------------------------------------

    def on_segment(self, packet: Packet) -> None:
        # A TCP endpoint ignores segments whose source is not the
        # established peer — this is what kills migrated connections.
        kind = (packet.payload or {}).get("kind")
        if (self.peer_addr is not None and packet.src != self.peer_addr
                and kind not in ("syn",)):
            return
        super().on_segment(packet)

    def on_local_address_change(self, new_addr: IPv4Address) -> None:
        """The 4-tuple is gone; the connection will die at the next RTO.

        Nothing proactive happens — that is the point. The peer's acks go
        to the old address; our segments leave from the new source and
        are discarded by the peer's 4-tuple check.
        """
        if self.state in (ConnectionState.ESTABLISHED, ConnectionState.CONNECTING):
            self._address_changed = True
            self._rtos_since_change = 0

    def _on_persistent_loss(self) -> None:
        if self._address_changed:
            self._rtos_since_change += 1
            if self._rtos_since_change >= self.BROKEN_AFTER_RTOS:
                self._become_broken()


class TcpListener(Listener):
    """Accepts TCP connections on a server host."""

    def __init__(self, sim, demux: TransportDemux, tls: bool = True,
                 ecn: bool = False) -> None:
        def factory(**kwargs):
            return TcpConnection(tls=tls, ecn=ecn, **kwargs)
        super().__init__(sim, demux, factory)
