"""Unit tests for the event tracer (repro.simcore.trace)."""

import pytest

from repro.core import DLTENetwork
from repro.simcore import Simulator, TraceEvent, Tracer
from repro.workloads import RuralTown


def test_trace_noop_without_tracer():
    sim = Simulator(0)
    sim.trace("anything", "goes nowhere", x=1)  # must not raise


def test_record_and_query():
    sim = Simulator(0)
    sim.tracer = Tracer()
    sim.schedule(1.0, lambda: sim.trace("cat", "hello", n=1))
    sim.schedule(2.0, lambda: sim.trace("dog", "world"))
    sim.run()
    assert len(sim.tracer) == 2
    cats = sim.tracer.events("cat")
    assert len(cats) == 1
    assert cats[0].time_s == 1.0
    assert cats[0].fields == {"n": 1}
    assert sim.tracer.categories() == ["cat", "dog"]


def test_time_window_query():
    tracer = Tracer()
    for t in (1.0, 2.0, 3.0, 4.0):
        tracer.record(t, "x", "tick")
    assert len(tracer.events(since_s=2.0, until_s=3.0)) == 2


def test_category_filter():
    tracer = Tracer(categories=["keep"])
    tracer.record(0.0, "keep", "yes")
    tracer.record(0.0, "drop", "no")
    assert tracer.count() == 1
    assert tracer.recorded == 1
    assert tracer.filtered == 1


def test_ring_buffer_bounds_memory():
    tracer = Tracer(max_events=10)
    for i in range(100):
        tracer.record(float(i), "x", f"event{i}")
    assert len(tracer) == 10
    assert tracer.events()[0].time_s == 90.0  # oldest dropped
    assert tracer.recorded == 100


def test_dump_renders_fields():
    tracer = Tracer()
    tracer.record(1.5, "attach", "session created", ue="ue3")
    text = tracer.dump()
    assert "attach" in text and "session created" in text and "ue=ue3" in text


def test_clear():
    tracer = Tracer()
    tracer.record(0.0, "x", "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.recorded == 1  # counters survive


def test_validates():
    with pytest.raises(ValueError):
        Tracer(max_events=0)


def test_event_is_frozen():
    event = TraceEvent(1.0, "c", "m")
    with pytest.raises(Exception):
        event.time_s = 2.0


def test_eviction_exactly_at_capacity():
    """The ring buffer holds exactly max_events before evicting."""
    tracer = Tracer(max_events=5)
    for i in range(5):
        tracer.record(float(i), "x", f"event{i}")
    assert len(tracer) == 5
    assert tracer.events()[0].time_s == 0.0  # nothing evicted yet
    tracer.record(5.0, "x", "event5")        # one past capacity
    assert len(tracer) == 5
    assert tracer.events()[0].time_s == 1.0  # exactly the oldest dropped
    assert tracer.recorded == 6


def test_time_window_boundaries_inclusive():
    """since/until are closed bounds; events at the edges are included."""
    tracer = Tracer()
    for t in (1.0, 2.0, 3.0):
        tracer.record(t, "x", "tick")
    assert [e.time_s for e in tracer.events(since_s=2.0)] == [2.0, 3.0]
    assert [e.time_s for e in tracer.events(until_s=2.0)] == [1.0, 2.0]
    assert [e.time_s
            for e in tracer.events(since_s=2.0, until_s=2.0)] == [2.0]
    assert tracer.events(since_s=3.0, until_s=1.0) == []


def test_filtered_counter_tracks_every_rejection():
    tracer = Tracer(categories=["keep"])
    for i in range(7):
        tracer.record(float(i), "drop", "no")
    tracer.record(7.0, "keep", "yes")
    assert tracer.filtered == 7
    assert tracer.recorded == 1


def test_clear_keeps_filter_counters():
    tracer = Tracer(categories=["keep"])
    tracer.record(0.0, "keep", "a")
    tracer.record(0.0, "drop", "b")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.recorded == 1 and tracer.filtered == 1
    tracer.record(1.0, "drop", "c")  # the filter itself survives clear()
    assert tracer.filtered == 2


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.record(1.0, "attach", "session created", ue="ue3", n=2)
    tracer.record(2.5, "drop", "link x: overflow")
    path = str(tmp_path / "trace.jsonl")
    assert tracer.to_jsonl(path) == 2
    reloaded = Tracer.from_jsonl(path)
    assert len(reloaded) == 2
    original, loaded = tracer.events(), reloaded.events()
    for before, after in zip(original, loaded):
        assert after.time_s == before.time_s
        assert after.category == before.category
        assert after.message == before.message
    assert loaded[0].fields == {"ue": "ue3", "n": 2}


def test_jsonl_reload_applies_category_filter(tmp_path):
    tracer = Tracer()
    tracer.record(1.0, "keep", "a")
    tracer.record(2.0, "drop", "b")
    path = str(tmp_path / "trace.jsonl")
    tracer.to_jsonl(path)
    narrowed = Tracer.from_jsonl(path, categories=["keep"])
    assert narrowed.count() == 1
    assert narrowed.filtered == 1


def test_jsonl_skips_non_trace_lines(tmp_path):
    path = tmp_path / "mixed.jsonl"
    path.write_text(
        '{"type": "span", "name": "epc.attach"}\n'
        '\n'
        '{"type": "trace", "time_s": 1.0, "category": "c", "message": "m"}\n')
    reloaded = Tracer.from_jsonl(str(path))
    assert len(reloaded) == 1
    assert reloaded.events()[0].category == "c"


def test_jsonl_stringifies_non_json_fields(tmp_path):
    class Opaque:
        def __str__(self):
            return "opaque-thing"

    tracer = Tracer()
    tracer.record(0.0, "x", "m", obj=Opaque())
    path = str(tmp_path / "trace.jsonl")
    tracer.to_jsonl(path)
    reloaded = Tracer.from_jsonl(path)
    assert reloaded.events()[0].fields == {"obj": "opaque-thing"}


def test_network_run_emits_protocol_traces():
    """The instrumented points fire during a real network run."""
    town = RuralTown(radius_m=1500, n_ues=4, n_aps=2, seed=2)
    net = DLTENetwork.build(town, seed=2)
    net.sim.tracer = Tracer()
    net.run(duration_s=3.0)
    assert net.sim.tracer.count("attach") == 4      # one per UE session
    assert net.sim.tracer.count("coordination") >= 2  # both APs installed
    for event in net.sim.tracer.events("attach"):
        assert "address" in event.fields
