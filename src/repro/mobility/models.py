"""Movement models: processes that update a position over time."""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.geo.points import Point
from repro.simcore.simulator import Simulator

PositionCallback = Callable[[Point], None]


class _Mover:
    """Shared machinery: tick the position every ``update_interval_s``."""

    def __init__(self, sim: Simulator, start: Point, speed_m_s: float,
                 update_interval_s: float = 0.5,
                 on_move: Optional[PositionCallback] = None,
                 name: str = "mover") -> None:
        if speed_m_s < 0:
            raise ValueError("speed must be non-negative")
        if update_interval_s <= 0:
            raise ValueError("update interval must be positive")
        self.sim = sim
        self.position = start
        self.speed_m_s = speed_m_s
        self.update_interval_s = update_interval_s
        self.on_move = on_move
        self.name = name
        self.distance_traveled_m = 0.0
        self._process = None

    def start(self) -> None:
        """Begin moving."""
        self._process = self.sim.process(self._run(), name=self.name)

    def stop(self) -> None:
        """Freeze in place."""
        if self._process is not None and self._process.is_alive:
            self._process.kill("mover stopped")

    def _step_to(self, new_position: Point) -> None:
        self.distance_traveled_m += self.position.distance_to(new_position)
        self.position = new_position
        if self.on_move is not None:
            self.on_move(self.position)

    def _run(self):
        raise NotImplementedError
        yield  # pragma: no cover


class LinearMover(_Mover):
    """Drives a straight segment from ``start`` toward ``destination``.

    Stops (process ends) on arrival — the E6 road trip.
    """

    def __init__(self, sim: Simulator, start: Point, destination: Point,
                 speed_m_s: float, **kwargs) -> None:
        super().__init__(sim, start, speed_m_s, **kwargs)
        self.destination = destination

    @property
    def arrived(self) -> bool:
        """True once the destination is reached."""
        return self.position == self.destination

    def _run(self):
        step = self.speed_m_s * self.update_interval_s
        if step == 0:
            return
        while not self.arrived:
            yield self.sim.timeout(self.update_interval_s)
            self._step_to(self.position.toward(self.destination, step))


class RandomWaypointMover(_Mover):
    """Classic random waypoint inside a disk: pick a point, walk, repeat."""

    def __init__(self, sim: Simulator, start: Point, speed_m_s: float,
                 area_center: Point, area_radius_m: float,
                 pause_s: float = 2.0, **kwargs) -> None:
        super().__init__(sim, start, speed_m_s, **kwargs)
        if area_radius_m <= 0:
            raise ValueError("area radius must be positive")
        if pause_s < 0:
            raise ValueError("pause must be non-negative")
        self.area_center = area_center
        self.area_radius_m = area_radius_m
        self.pause_s = pause_s

    def _pick_waypoint(self) -> Point:
        rng = self.sim.rng(f"mobility:{self.name}")
        r = self.area_radius_m * math.sqrt(float(rng.random()))
        theta = 2 * math.pi * float(rng.random())
        return Point(self.area_center.x + r * math.cos(theta),
                     self.area_center.y + r * math.sin(theta))

    def _run(self):
        step = self.speed_m_s * self.update_interval_s
        if step == 0:
            return
        while True:
            waypoint = self._pick_waypoint()
            while self.position != waypoint:
                yield self.sim.timeout(self.update_interval_s)
                self._step_to(self.position.toward(waypoint, step))
            if self.pause_s:
                yield self.sim.timeout(self.pause_s)
