"""E5 — §4.3 "Out-of-Band Coordination": the coordination-mode ladder.

N AP sites in one RF contention domain, each with UEs demanding
saturation downlink. Five arms:

* **legacy WiFi** — independent APs contending via CSMA (collisions +
  backoff waste airtime);
* **dLTE uncoordinated** — LTE cells all using the full grid (co-channel
  interference crushes SINR);
* **dLTE fair-sharing** — the default mode: disjoint equal slices;
* **dLTE cooperative** — best-AP assignment + demand-weighted fusion;
* **ICIC reuse-3** — the static reference.

Reported: aggregate goodput and Jain fairness across UEs. The paper's
claim: fair sharing reaches a WiFi-like equilibrium without contention
losses, and cooperation buys more by exploiting load asymmetry.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.coordination.cooperative import CooperativeCluster
from repro.coordination.fair_sharing import compute_weighted_partition
from repro.coordination.icic import reuse_partition
from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo.points import Point
from repro.mac.csma import CsmaNode, CsmaSimulation
from repro.metrics.stats import jain_fairness
from repro.metrics.tables import ResultTable
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import wifi_rate_for_snr
from repro.phy.propagation import model_for_frequency

#: overlapping coverage: AP sites a few hundred meters apart, one town
AP_SPACING_M = 500.0
TTIS = 300


def _build_cells(n_aps: int, ue_per_ap: int, seed: int,
                 asymmetric_load: bool) -> Tuple[List[Cell], Dict[str, Radio]]:
    """One genuinely shared contention domain.

    UEs are spread uniformly over the whole strip (many sit at cell
    edges, between APs), then attached to the strongest cell — except in
    the asymmetric case, where the first AP is additionally loaded with
    extra close-in users to create the demand skew cooperative mode
    exploits.
    """
    band = get_band("lte5")
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)
    rng = np.random.default_rng(seed)
    cells: List[Cell] = [
        Cell(f"cell{i}", band, Point(i * AP_SPACING_M, 0), budget)
        for i in range(n_aps)]
    ue_radios: Dict[str, Radio] = {}

    def attach(ue_id: str, radio: Radio, cell: Cell) -> None:
        ue_radios[ue_id] = radio
        cell.add_ue(UeRadioContext(ue_id=ue_id, radio=radio))

    n_spread = n_aps * ue_per_ap
    strip = (n_aps - 1) * AP_SPACING_M
    for k in range(n_spread):
        x = float(rng.uniform(-200.0, strip + 200.0))
        y = float(rng.uniform(50.0, 400.0))
        radio = Radio(Point(x, y), tx_power_dbm=23, height_m=1.5)
        best = max(cells, key=lambda c: (c.rsrp_to(radio), c.name))
        attach(f"u{best.name}_{k}", radio, best)
    if asymmetric_load:
        for j in range(ue_per_ap):
            radio = Radio(Point(float(rng.uniform(-100, 100)),
                                float(rng.uniform(50, 200))),
                          tx_power_dbm=23, height_m=1.5)
            attach(f"uhot_{j}", radio, cells[0])
    return cells, ue_radios


def _lte_arm(cells: List[Cell], mode: str) -> Dict[str, float]:
    """Run the radio phase under one coordination mode."""
    names = [c.name for c in cells]
    n_prbs = cells[0].grid.n_prbs
    if mode == "none":
        for cell in cells:
            cell.allowed_prbs = cell.grid.all_prbs
            cell.interferers = [c for c in cells if c is not cell]
    elif mode == "fair":
        partition = compute_weighted_partition(
            n_prbs, {n: 1.0 for n in names})
        for cell in cells:
            cell.allowed_prbs = partition[cell.name]
            cell.interferers = []
    elif mode == "reuse3":
        partition = reuse_partition(names, n_prbs, reuse_factor=3)
        for cell in cells:
            cell.allowed_prbs = partition[cell.name]
            cell.interferers = [c for c in cells
                                if c is not cell
                                and partition[c.name] & partition[cell.name]]
    elif mode == "cooperative":
        cluster = CooperativeCluster()
        for cell in cells:
            cluster.join(cell)
        cluster.optimize()
        for cell in cells:
            cell.interferers = []
    else:
        raise ValueError(f"unknown mode {mode!r}")

    results = {c.name: [] for c in cells}
    for _ in range(TTIS):
        for cell in cells:
            results[cell.name].append(cell.schedule_tti())
    throughput: Dict[str, float] = {}
    for cell in cells:
        throughput.update(cell.throughput_bps(results[cell.name]))
    return throughput


def _wifi_arm(n_aps: int, ue_per_ap: int, seed: int,
              asymmetric_load: bool) -> Dict[str, float]:
    """Legacy WiFi: same geometry, all APs in one collision domain."""
    band = get_band("wifi2g4")
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)
    rng = np.random.default_rng(seed)
    everyone = frozenset(f"ap{i}" for i in range(n_aps))
    nodes = [CsmaNode(f"ap{i}", hears=everyone - {f"ap{i}"})
             for i in range(n_aps)]
    result = CsmaSimulation(nodes, np.random.default_rng(seed),
                            frame_slots=50).run(150_000)
    ap_radios = [Radio(Point(i * AP_SPACING_M, 0), tx_power_dbm=23,
                       antenna_gain_dbi=13, height_m=30)
                 for i in range(n_aps)]
    clients: Dict[int, List[Radio]] = {i: [] for i in range(n_aps)}
    strip = (n_aps - 1) * AP_SPACING_M
    for _k in range(n_aps * ue_per_ap):
        radio = Radio(Point(float(rng.uniform(-200.0, strip + 200.0)),
                            float(rng.uniform(50.0, 400.0))),
                      tx_power_dbm=20)
        best = max(range(n_aps),
                   key=lambda i: budget.rx_power_dbm(ap_radios[i], radio))
        clients[best].append(radio)
    if asymmetric_load:
        for _j in range(ue_per_ap):
            clients[0].append(Radio(
                Point(float(rng.uniform(-100, 100)),
                      float(rng.uniform(50, 200))), tx_power_dbm=20))
    throughput: Dict[str, float] = {}
    for i in range(n_aps):
        if not clients[i]:
            continue
        share = result.delivered[f"ap{i}"] * 50 / result.slots
        for j, ue_radio in enumerate(clients[i]):
            phy = wifi_rate_for_snr(budget.snr_db(ap_radios[i], ue_radio),
                                    band.bandwidth_hz)
            throughput[f"u{i}_{j}"] = phy * share * 0.7 / len(clients[i])
    return throughput


def gbr_protection(n_aps: int = 2, seed: int = 3) -> ResultTable:
    """§4.3 extension: "QoS aware joint flow scheduling between APs".

    A video bearer with a guaranteed bit rate competes with a crowd of
    bulk users. Cooperative mode (which installs the QoS-aware
    scheduler) must hold the guarantee as load grows; a plain PF cell
    lets the video rate dilute; WiFi has no bearer concept at all.
    """
    from repro.enodeb.cell import UeRadioContext
    from repro.phy.linkbudget import Radio

    GBR_BPS = 3e6
    table = ResultTable(
        "E5 extension: a 3 Mbps GBR video bearer under growing load",
        ["bulk_users", "coop_video_mbps", "pf_video_mbps",
         "guarantee_held"])
    for n_bulk in (2, 8, 16, 32):
        rates = {}
        for mode in ("cooperative", "fair"):
            cells, _radios = _build_cells(n_aps, 1, seed,
                                          asymmetric_load=False)
            video = UeRadioContext(
                "video", Radio(Point(100, 120), tx_power_dbm=23),
                gbr_bps=GBR_BPS, priority=1)
            cells[0].add_ue(video)
            rng = np.random.default_rng(seed + n_bulk)
            for b in range(n_bulk):
                cells[0].add_ue(UeRadioContext(
                    f"bulk{b}",
                    Radio(Point(float(rng.uniform(-300, 300)),
                                float(rng.uniform(60, 400))),
                          tx_power_dbm=23)))
            throughput = _lte_arm(cells, mode)
            rates[mode] = throughput.get("video", 0.0)
        table.add_row(bulk_users=n_bulk,
                      coop_video_mbps=rates["cooperative"] / 1e6,
                      pf_video_mbps=rates["fair"] / 1e6,
                      guarantee_held=("yes" if rates["cooperative"]
                                      >= 0.95 * GBR_BPS else "no"))
    return table


def run(n_aps: int = 4, ue_per_ap: int = 4, seed: int = 2,
        asymmetric_load: bool = True) -> ResultTable:
    """Aggregate goodput + fairness per coordination arm."""
    table = ResultTable(
        f"E5: coordination modes ({n_aps} APs, shared domain)",
        ["arm", "aggregate_mbps", "jain_fairness", "min_ue_mbps"])
    arms = [
        ("legacy WiFi (CSMA)",
         _wifi_arm(n_aps, ue_per_ap, seed, asymmetric_load)),
    ]
    for mode, label in (("none", "dLTE uncoordinated"),
                        ("fair", "dLTE fair-sharing"),
                        ("cooperative", "dLTE cooperative"),
                        ("reuse3", "ICIC reuse-3 (static)")):
        cells, _radios = _build_cells(n_aps, ue_per_ap, seed, asymmetric_load)
        arms.append((label, _lte_arm(cells, mode)))
    for label, tput in arms:
        values = list(tput.values())
        table.add_row(arm=label,
                      aggregate_mbps=sum(values) / 1e6,
                      jain_fairness=jain_fairness(values),
                      min_ue_mbps=min(values) / 1e6)
    return table
