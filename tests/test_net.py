"""Unit tests for the IP substrate (addressing, links, nodes, tunnels, internet)."""

import ipaddress

import pytest

from repro.net import (
    AddressPool,
    GTP_HEADER_BYTES,
    GtpTunnel,
    Host,
    InternetCore,
    Link,
    Packet,
    Router,
    TunnelEndpoint,
)
from repro.net.addressing import PoolExhausted
from repro.simcore import Simulator

IP = ipaddress.IPv4Address


@pytest.fixture
def sim():
    return Simulator(seed=0)


# -- addressing ---------------------------------------------------------------

def test_pool_allocates_unique_hosts():
    pool = AddressPool("10.0.0.0/29")  # 6 hosts
    addrs = [pool.allocate() for _ in range(6)]
    assert len(set(addrs)) == 6
    assert all(a in ipaddress.IPv4Network("10.0.0.0/29") for a in addrs)
    network = ipaddress.IPv4Network("10.0.0.0/29")
    assert network.network_address not in addrs
    assert network.broadcast_address not in addrs


def test_pool_exhaustion():
    pool = AddressPool("10.0.0.0/30")
    pool.allocate(), pool.allocate()
    with pytest.raises(PoolExhausted):
        pool.allocate()


def test_pool_release_reuses_lowest():
    pool = AddressPool("10.0.0.0/29")
    a1, a2 = pool.allocate(), pool.allocate()
    pool.release(a2)
    pool.release(a1)
    assert pool.allocate() == a1


def test_pool_rejects_double_free_and_foreign():
    pool = AddressPool("10.0.0.0/29")
    addr = pool.allocate()
    pool.release(addr)
    with pytest.raises(ValueError):
        pool.release(addr)
    with pytest.raises(ValueError):
        pool.release(IP("192.168.1.1"))


def test_pool_contains():
    pool = AddressPool("10.1.0.0/16")
    assert pool.contains(IP("10.1.2.3"))
    assert not pool.contains(IP("10.2.0.1"))
    assert not pool.contains(None)


def test_pool_too_small_rejected():
    with pytest.raises(ValueError):
        AddressPool("10.0.0.0/31")


# -- packets --------------------------------------------------------------------

def test_packet_validates_size():
    with pytest.raises(ValueError):
        Packet(src=None, dst=None, size_bytes=0)


def test_packet_age_and_hops():
    p = Packet(src=None, dst=None, size_bytes=100, created_at=1.0)
    p.record_hop("a")
    p.record_hop("b")
    assert p.hop_count == 2 and p.hops == ["a", "b"]
    assert p.age(3.5) == 2.5


def test_packet_ids_unique():
    a = Packet(src=None, dst=None, size_bytes=1)
    b = Packet(src=None, dst=None, size_bytes=1)
    assert a.packet_id != b.packet_id


# -- links ------------------------------------------------------------------------

def test_link_delivery_time(sim):
    got = []
    link = Link(sim, rate_bps=8000.0, delay_s=0.1)  # 1000 bytes/s
    link.connect(lambda p: got.append(sim.now))
    link.send(Packet(src=None, dst=None, size_bytes=500))
    sim.run()
    # 500 B at 1000 B/s = 0.5 s serialize + 0.1 s propagate
    assert got == [pytest.approx(0.6)]


def test_link_serializes_back_to_back(sim):
    got = []
    link = Link(sim, rate_bps=8000.0, delay_s=0.0)
    link.connect(lambda p: got.append(sim.now))
    for _ in range(3):
        link.send(Packet(src=None, dst=None, size_bytes=1000))
    sim.run()
    assert got == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_link_drop_tail(sim):
    link = Link(sim, rate_bps=8.0, delay_s=0, queue_packets=2)
    link.connect(lambda p: None)
    results = [link.send(Packet(src=None, dst=None, size_bytes=100))
               for _ in range(5)]
    # one serializing + 2 queued accepted; rest dropped
    assert results == [True, True, True, False, False]
    assert link.dropped == 2


def test_link_infinite_rate(sim):
    got = []
    link = Link(sim, rate_bps=float("inf"), delay_s=0.25)
    link.connect(lambda p: got.append(sim.now))
    link.send(Packet(src=None, dst=None, size_bytes=10**9))
    sim.run()
    assert got == [0.25]


def test_link_requires_receiver(sim):
    link = Link(sim, rate_bps=1e6, delay_s=0)
    with pytest.raises(RuntimeError):
        link.send(Packet(src=None, dst=None, size_bytes=10))


def test_link_validates_params(sim):
    with pytest.raises(ValueError):
        Link(sim, rate_bps=0, delay_s=0)
    with pytest.raises(ValueError):
        Link(sim, rate_bps=1, delay_s=-1)
    with pytest.raises(ValueError):
        Link(sim, rate_bps=1, delay_s=0, queue_packets=0)


# -- routing -----------------------------------------------------------------------

def _linear_topology(sim):
    r1, r2 = Router(sim, "r1"), Router(sim, "r2")
    dst = Host(sim, "dst", IP("10.2.0.5"))
    r1.connect_bidirectional(r2, delay_s=0.01)
    r2.connect_bidirectional(dst, delay_s=0.001)
    r1.add_route("10.2.0.0/16", "r2")
    r2.add_route("10.2.0.5/32", "dst")
    return r1, r2, dst


def test_router_forwards_by_longest_prefix(sim):
    r1, r2, dst = _linear_topology(sim)
    got = []
    dst.on_packet = lambda p: got.append(p.hops)
    r1.receive(Packet(src=IP("10.1.0.1"), dst=IP("10.2.0.5"), size_bytes=100))
    sim.run()
    assert got == [["r1", "r2", "dst"]]


def test_longest_prefix_beats_shorter(sim):
    router = Router(sim, "r")
    router.add_route("10.0.0.0/8", "coarse")
    router.add_route("10.5.0.0/16", "fine")
    assert router.lookup(IP("10.5.1.1")) == "fine"
    assert router.lookup(IP("10.9.1.1")) == "coarse"


def test_default_route_fallback(sim):
    router = Router(sim, "r")
    router.default_route = "up"
    assert router.lookup(IP("8.8.8.8")) == "up"


def test_no_route_counted(sim):
    router = Router(sim, "r")
    router.receive(Packet(src=None, dst=IP("9.9.9.9"), size_bytes=50))
    sim.run()
    assert router.no_route == 1


def test_route_withdrawal(sim):
    router = Router(sim, "r")
    router.add_route("10.0.0.0/8", "a")
    router.add_route("10.5.0.0/16", "a")
    assert router.remove_routes_to("a") == 2
    assert router.lookup(IP("10.1.1.1")) is None


def test_local_delivery_hook(sim):
    router = Router(sim, "r")
    local = []
    router.local_addresses.append(IP("10.0.0.1"))
    router.local_handler = lambda p: local.append(p.payload)
    router.receive(Packet(src=None, dst=IP("10.0.0.1"), size_bytes=40,
                          payload="hello"))
    sim.run()
    assert local == ["hello"]


def test_host_multihoming(sim):
    host = Host(sim, "h", IP("10.0.0.1"))
    host.add_address(IP("10.9.0.1"))
    assert host.address == IP("10.0.0.1")
    assert len(host.addresses) == 2
    host.remove_address(IP("10.0.0.1"))
    assert host.address == IP("10.9.0.1")


def test_send_via_unknown_neighbor_raises(sim):
    host = Host(sim, "h")
    with pytest.raises(KeyError, match="no link"):
        host.send_via("ghost", Packet(src=None, dst=None, size_bytes=1))


# -- tunnels -----------------------------------------------------------------------

def test_gtp_encap_decap_roundtrip():
    enb = TunnelEndpoint(IP("192.168.0.1"))
    sgw = TunnelEndpoint(IP("192.168.0.2"))
    enb.add_tunnel(GtpTunnel(101, IP("192.168.0.1"), IP("192.168.0.2")))
    sgw.add_tunnel(GtpTunnel(101, IP("192.168.0.2"), IP("192.168.0.1")))

    p = Packet(src=IP("10.0.0.5"), dst=IP("8.8.8.8"), size_bytes=1000)
    enb.encapsulate(p, 101)
    assert p.size_bytes == 1000 + GTP_HEADER_BYTES
    assert p.dst == IP("192.168.0.2") and p.tunnel_depth == 1

    sgw.decapsulate(p)
    assert p.size_bytes == 1000
    assert p.src == IP("10.0.0.5") and p.dst == IP("8.8.8.8")
    assert p.tunnel_depth == 0


def test_gtp_nested_tunnels():
    a = TunnelEndpoint(IP("1.1.1.1"))
    b = TunnelEndpoint(IP("2.2.2.2"))
    a.add_tunnel(GtpTunnel(1, IP("1.1.1.1"), IP("2.2.2.2")))
    b.add_tunnel(GtpTunnel(2, IP("2.2.2.2"), IP("3.3.3.3")))
    p = Packet(src=IP("10.0.0.1"), dst=IP("8.8.8.8"), size_bytes=500)
    a.encapsulate(p, 1)
    p.dst = IP("2.2.2.2")
    b.encapsulate(p, 2)
    assert p.tunnel_depth == 2
    assert p.size_bytes == 500 + 2 * GTP_HEADER_BYTES


def test_gtp_validates():
    ep = TunnelEndpoint(IP("1.1.1.1"))
    with pytest.raises(ValueError):
        GtpTunnel(0, IP("1.1.1.1"), IP("2.2.2.2"))
    with pytest.raises(ValueError):
        ep.add_tunnel(GtpTunnel(1, IP("9.9.9.9"), IP("2.2.2.2")))
    ep.add_tunnel(GtpTunnel(1, IP("1.1.1.1"), IP("2.2.2.2")))
    with pytest.raises(ValueError):
        ep.add_tunnel(GtpTunnel(1, IP("1.1.1.1"), IP("3.3.3.3")))
    with pytest.raises(KeyError):
        ep.encapsulate(Packet(src=None, dst=None, size_bytes=10), 99)
    with pytest.raises(ValueError):
        ep.decapsulate(Packet(src=None, dst=None, size_bytes=10))


def test_gtp_decap_wrong_endpoint_rejected():
    a = TunnelEndpoint(IP("1.1.1.1"))
    b = TunnelEndpoint(IP("5.5.5.5"))
    a.add_tunnel(GtpTunnel(7, IP("1.1.1.1"), IP("2.2.2.2")))
    p = Packet(src=IP("10.0.0.1"), dst=IP("8.8.8.8"), size_bytes=100)
    a.encapsulate(p, 7)
    with pytest.raises(ValueError, match="not this endpoint"):
        b.decapsulate(p)


def test_tunnel_teardown():
    ep = TunnelEndpoint(IP("1.1.1.1"))
    ep.add_tunnel(GtpTunnel(5, IP("1.1.1.1"), IP("2.2.2.2")))
    assert ep.active_tunnels == 1
    ep.remove_tunnel(5)
    assert ep.active_tunnels == 0 and ep.tunnel(5) is None


# -- internet core ------------------------------------------------------------------

def test_internet_end_to_end(sim):
    inet = InternetCore(sim)
    edge_a, edge_b = Router(sim, "a"), Router(sim, "b")
    inet.attach(edge_a, "10.1.0.0/16", access_delay_s=0.02)
    inet.attach(edge_b, "10.2.0.0/16", access_delay_s=0.03)
    dst = Host(sim, "dst", IP("10.2.0.9"))
    edge_b.connect_bidirectional(dst)
    edge_b.add_route("10.2.0.9/32", "dst")
    got = []
    dst.on_packet = lambda p: got.append(sim.now)
    edge_a.receive(Packet(src=IP("10.1.0.1"), dst=IP("10.2.0.9"), size_bytes=100))
    sim.run()
    assert got and 0.05 < got[0] < 0.06


def test_internet_rtt_estimate(sim):
    inet = InternetCore(sim)
    a, b = Router(sim, "a"), Router(sim, "b")
    inet.attach(a, "10.1.0.0/16", access_delay_s=0.02)
    inet.attach(b, "10.2.0.0/16", access_delay_s=0.03)
    assert inet.rtt_between_s("a", "b") == pytest.approx(0.1002)
    with pytest.raises(KeyError):
        inet.rtt_between_s("a", "zzz")


def test_internet_sets_default_route(sim):
    inet = InternetCore(sim)
    edge = Router(sim, "edge")
    inet.attach(edge, "10.1.0.0/16")
    assert edge.default_route == "internet"
