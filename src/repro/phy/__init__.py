"""Radio physical layer: bands, propagation, link budget, MCS, HARQ.

This package is the substrate behind the paper's §3.2 claims ("Spectrum
Bands" and "LTE Waveform"): LTE's sub-GHz band options propagate farther
than WiFi's ISM bands, and LTE's SC-FDMA uplink plus HARQ hold links
together at SINRs where WiFi's OFDM dies. All of these are consequences
of standard link-budget physics and the 3GPP/802.11 rate tables, which is
what this package implements.
"""

from repro.phy.antenna import OmniAntenna, SectorAntenna, sector_boresights
from repro.phy.bands import Band, LTE_BANDS, WIFI_BANDS, get_band
from repro.phy.fading import ShadowingField
from repro.phy.harq import HarqProcess, harq_goodput_factor
from repro.phy.linkbudget import LinkBudget, Radio, received_power_dbm, sinr_db
from repro.phy.mcs import (
    LTE_CQI_TABLE,
    WIFI_MCS_TABLE,
    McsEntry,
    lte_efficiency_for_sinr,
    select_lte_cqi,
    select_wifi_mcs,
    wifi_rate_for_snr,
)
from repro.phy.propagation import (
    Cost231Hata,
    FreeSpace,
    LogDistance,
    OkumuraHata,
    PropagationModel,
    TwoRayGround,
)
from repro.phy.resource_grid import ResourceGrid, prbs_for_bandwidth
from repro.phy.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    thermal_noise_dbm,
    watts_to_dbm,
)

__all__ = [
    "OmniAntenna", "SectorAntenna", "sector_boresights",
    "Band", "LTE_BANDS", "WIFI_BANDS", "get_band",
    "ShadowingField",
    "HarqProcess", "harq_goodput_factor",
    "LinkBudget", "Radio", "received_power_dbm", "sinr_db",
    "LTE_CQI_TABLE", "WIFI_MCS_TABLE", "McsEntry",
    "lte_efficiency_for_sinr", "select_lte_cqi", "select_wifi_mcs",
    "wifi_rate_for_snr",
    "PropagationModel", "FreeSpace", "LogDistance", "TwoRayGround",
    "OkumuraHata", "Cost231Hata",
    "ResourceGrid", "prbs_for_bandwidth",
    "db_to_linear", "linear_to_db", "dbm_to_watts", "watts_to_dbm",
    "thermal_noise_dbm",
]
