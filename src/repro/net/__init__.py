"""IP substrate: addresses, packets, links, routers, tunnels, Internet.

The paper's Figure 1 contrast is a *path* contrast: in carrier LTE every
user packet is GTP-tunneled from the eNodeB to a distant EPC before it
reaches the Internet; in dLTE the AP decapsulates locally and forwards
plain IP ("dLTE terminates all LTE tunnels at the AP and outputs the
client's unencapsulated IP traffic", §4.1). This package provides the
pieces both paths are made of: rate/delay links with drop-tail queues,
static-routing nodes, GTP-U encapsulation, and a latency-modelled
Internet core.
"""

from repro.net.addressing import AddressPool, IPv4Address
from repro.net.internet import InternetCore
from repro.net.links import Link
from repro.net.nat import NatRouter
from repro.net.nodes import Host, NetworkNode, Router
from repro.net.packet import Packet
from repro.net.tunnel import GTP_HEADER_BYTES, GtpTunnel, TunnelEndpoint

__all__ = [
    "AddressPool", "IPv4Address",
    "InternetCore",
    "Link",
    "NetworkNode", "Host", "Router", "NatRouter",
    "Packet",
    "GtpTunnel", "TunnelEndpoint", "GTP_HEADER_BYTES",
]
