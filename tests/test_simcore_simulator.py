"""Unit tests for the discrete-event kernel (repro.simcore.simulator)."""

import pytest

from repro.simcore import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_schedule_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    ran = []
    sim.schedule(1.0, ran.append, 1)
    sim.schedule(10.0, ran.append, 10)
    sim.run(until=5.0)
    assert ran == [1]
    assert sim.now == 5.0
    # later event still queued; resuming picks it up
    sim.run()
    assert ran == [1, 10]
    assert sim.now == 10.0


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(1.0, lambda: None)


def test_cancelled_call_does_not_run():
    sim = Simulator()
    ran = []
    handle = sim.schedule(1.0, ran.append, "x")
    handle.cancel()
    sim.run()
    assert ran == []


def test_call_soon_runs_after_pending_same_time_work():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_soon(order.append, "soon")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "soon"]


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        if sim.now < 5:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    assert times == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_max_events_budget():
    sim = Simulator()
    count = []
    for i in range(100):
        sim.schedule(i * 0.1, count.append, i)
    sim.run(max_events=10)
    assert len(count) == 10


def test_events_executed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_executed == 7


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_determinism_same_seed_same_draws():
    a = Simulator(seed=42).rng("traffic").random(5)
    b = Simulator(seed=42).rng("traffic").random(5)
    assert (a == b).all()


def test_rng_streams_independent_of_creation_order():
    sim1 = Simulator(seed=7)
    x1 = sim1.rng("a").random()
    y1 = sim1.rng("b").random()
    sim2 = Simulator(seed=7)
    y2 = sim2.rng("b").random()
    x2 = sim2.rng("a").random()
    assert x1 == x2
    assert y1 == y2


def test_rng_different_names_differ():
    sim = Simulator(seed=3)
    assert sim.rng("one").random() != sim.rng("two").random()


def test_rng_fork_independent():
    base = Simulator(seed=5).rng
    f1 = base.fork(1).stream("s").random(3)
    f2 = base.fork(2).stream("s").random(3)
    assert not (f1 == f2).all()
