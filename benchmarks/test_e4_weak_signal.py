"""Bench E4 — weak-signal goodput: SC-FDMA + HARQ vs WiFi (§3.2)."""

from conftest import emit, once

from repro.experiments import e4_weak_signal


def test_e4_goodput_vs_sinr(benchmark):
    table = once(benchmark, e4_weak_signal.run)
    emit(table)
    rows = {row["channel_sinr_db"]: row for row in table.rows}
    # below WiFi's floor, LTE still delivers
    assert rows[-4]["wifi"] == 0.0
    assert rows[-4]["lte_harq"] > 0.1
    # HARQ combining beats plain ARQ in the weak region
    assert rows[-10]["lte_harq"] > rows[-10]["lte_plain_arq"]
    assert rows[-6]["lte_harq"] > rows[-6]["lte_plain_arq"]
    # at strong SINR everyone converges to their table peaks; LTE's
    # 64QAM table beats 802.11n single-stream throughout
    assert rows[20]["lte_harq"] > rows[20]["wifi"]
    # monotone non-decreasing goodput with SINR for every arm
    for col in ("lte_harq", "lte_plain_arq", "wifi"):
        values = [row[col] for row in table.rows]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_e4_link_death_floors(benchmark):
    table = once(benchmark, e4_weak_signal.link_death_sinrs)
    emit(table)
    floors = {row["arm"]: row["dies_below_db"] for row in table.rows}
    # the ladder: HARQ < plain ARQ < WiFi, with >10 dB total spread
    assert floors["lte_harq"] < floors["lte_plain_arq"] < floors["wifi"]
    assert floors["wifi"] - floors["lte_harq"] > 10.0


def test_e4_harq_retx_ablation(benchmark):
    table = once(benchmark, e4_weak_signal.harq_retx_ablation)
    emit(table)
    values = table.column("goodput_bps_hz")
    # more retransmission budget helps at weak SINR, saturating
    assert values[0] < values[2] <= values[-1] * 1.05
