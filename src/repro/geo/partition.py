"""Spatial partitioning: carve a deployment's sites into shards.

The sharded simulator (:mod:`repro.simcore.sharded`) needs a mapping
from cell sites to shards. Any mapping is *correct* — cross-shard
traffic is synchronized conservatively regardless — but a good one
keeps shards balanced (the window barrier waits for the slowest shard)
and geographically contiguous (neighbour interactions such as X2 or
handover stay co-located and off the window's critical path).

:func:`stripe_partition` is the deliberately simple default: sort sites
by position and cut the order into equal contiguous runs. For the grid
and road layouts in :mod:`repro.geo.placement` this yields compact
vertical stripes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geo.points import Point

__all__ = ["stripe_partition"]


def stripe_partition(positions: Sequence[Point], n_shards: int) -> List[int]:
    """Assign each position a shard index: balanced contiguous stripes.

    Sites are ordered by ``(x, y, index)`` and split into ``n_shards``
    contiguous runs whose sizes differ by at most one. Deterministic:
    same positions, same assignment, in any process.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    count = len(positions)
    if count == 0:
        raise ValueError("cannot partition an empty deployment")
    order = sorted(range(count),
                   key=lambda i: (positions[i].x, positions[i].y, i))
    assignment = [0] * count
    base, extra = divmod(count, n_shards)
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        for index in order[start:start + size]:
            assignment[index] = shard
        start += size
    return assignment
