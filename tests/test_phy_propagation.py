"""Unit tests for propagation models and shadowing."""

import pytest

from repro.geo import Point
from repro.phy import (
    Cost231Hata,
    FreeSpace,
    LogDistance,
    OkumuraHata,
    ShadowingField,
    TwoRayGround,
)
from repro.phy.propagation import model_for_frequency


def test_free_space_canonical_value():
    # FSPL at 1 km, 1000 MHz: 32.44 + 60 = 92.44 dB
    assert FreeSpace().path_loss_db(1000, 1000) == pytest.approx(92.44, abs=0.1)


def test_free_space_inverse_square():
    fs = FreeSpace()
    assert (fs.path_loss_db(2000, 900) - fs.path_loss_db(1000, 900)
            == pytest.approx(6.02, abs=0.01))


def test_free_space_frequency_scaling():
    fs = FreeSpace()
    # doubling frequency adds 6 dB
    assert (fs.path_loss_db(1000, 1800) - fs.path_loss_db(1000, 900)
            == pytest.approx(6.02, abs=0.01))


def test_models_clamp_tiny_distance():
    for model in (FreeSpace(), LogDistance(), TwoRayGround()):
        assert model.path_loss_db(0.0, 900) == model.path_loss_db(1.0, 900)


def test_negative_distance_rejected():
    with pytest.raises(ValueError):
        FreeSpace().path_loss_db(-5, 900)


def test_log_distance_exponent():
    ld = LogDistance(exponent=4.0, ref_m=100)
    # 10x distance -> 40 dB at exponent 4
    assert (ld.path_loss_db(10_000, 900) - ld.path_loss_db(1000, 900)
            == pytest.approx(40.0, abs=0.01))


def test_log_distance_matches_fspl_below_reference():
    ld = LogDistance(exponent=4.0, ref_m=100)
    assert ld.path_loss_db(50, 900) == pytest.approx(
        FreeSpace().path_loss_db(50, 900))


def test_log_distance_rejects_subunity_exponent():
    with pytest.raises(ValueError):
        LogDistance(exponent=0.5)


def test_two_ray_crossover_and_regime():
    tr = TwoRayGround(tx_height_m=30, rx_height_m=1.5)
    d_c = tr.crossover_m(900)
    assert 1000 < d_c < 3000  # ~1.7 km for these heights
    # far regime is frequency independent
    assert tr.path_loss_db(10_000, 900) == tr.path_loss_db(10_000, 2400)
    # 40 dB/decade in far regime
    assert (tr.path_loss_db(30_000, 900) - tr.path_loss_db(3000, 900)
            == pytest.approx(40.0, abs=0.01))


def test_two_ray_taller_antennas_reduce_loss():
    short = TwoRayGround(tx_height_m=10)
    tall = TwoRayGround(tx_height_m=40)
    assert tall.path_loss_db(10_000, 900) < short.path_loss_db(10_000, 900)


def test_hata_open_less_loss_than_urban():
    d, f = 5000, 850
    urban = OkumuraHata(environment="urban").path_loss_db(d, f)
    suburban = OkumuraHata(environment="suburban").path_loss_db(d, f)
    rural = OkumuraHata(environment="open").path_loss_db(d, f)
    assert rural < suburban < urban


def test_hata_loss_grows_with_frequency():
    model = OkumuraHata(environment="open")
    assert model.path_loss_db(5000, 1500) > model.path_loss_db(5000, 450)


def test_hata_validity_limits():
    with pytest.raises(ValueError):
        OkumuraHata(environment="open").path_loss_db(1000, 100)  # below 150 MHz
    with pytest.raises(ValueError):
        OkumuraHata(bs_height_m=5)
    with pytest.raises(ValueError):
        OkumuraHata(environment="jungle")


def test_cost231_validity_limits():
    with pytest.raises(ValueError):
        Cost231Hata().path_loss_db(1000, 900)  # below 1500 MHz
    with pytest.raises(ValueError):
        Cost231Hata(bs_height_m=500)


def test_cost231_continues_hata_trend():
    # At the 1500 MHz boundary the two families should be within a few dB.
    hata = OkumuraHata(environment="open").path_loss_db(5000, 1499)
    cost = Cost231Hata(environment="open").path_loss_db(5000, 1501)
    assert abs(hata - cost) < 6.0


def test_850mhz_beats_2400mhz_at_range():
    """§3.2 core claim: sub-GHz propagates much better than ISM 2.4 GHz."""
    lte = OkumuraHata(environment="open").path_loss_db(10_000, 850)
    wifi = Cost231Hata(environment="open").path_loss_db(10_000, 2400)
    assert wifi - lte > 8.0  # ~9 dB model advantage at 10 km, before
    # the EIRP-cap and antenna advantages that E3 adds on top


def test_model_for_frequency_dispatch():
    assert isinstance(model_for_frequency(850), OkumuraHata)
    assert isinstance(model_for_frequency(2400), Cost231Hata)
    assert isinstance(model_for_frequency(60_000), LogDistance)


# -- shadowing ----------------------------------------------------------------

def test_shadowing_deterministic_per_link():
    field = ShadowingField(sigma_db=8, seed=3)
    a, b = Point(10, 20), Point(500, 700)
    assert field.shadowing_db(a, b) == field.shadowing_db(a, b)


def test_shadowing_reciprocal():
    field = ShadowingField(sigma_db=8, seed=3)
    a, b = Point(10, 20), Point(500, 700)
    assert field.shadowing_db(a, b) == field.shadowing_db(b, a)


def test_shadowing_zero_sigma_disabled():
    field = ShadowingField(sigma_db=0)
    assert field.shadowing_db(Point(0, 0), Point(100, 100)) == 0.0


def test_shadowing_constant_within_coherence_cell():
    field = ShadowingField(sigma_db=8, coherence_m=50, seed=1)
    a = Point(0, 0)
    assert (field.shadowing_db(a, Point(500, 500))
            == field.shadowing_db(a, Point(510, 520)))  # same 50 m cell


def test_shadowing_varies_across_cells():
    field = ShadowingField(sigma_db=8, coherence_m=50, seed=1)
    a = Point(0, 0)
    draws = {field.shadowing_db(a, Point(1000 + 100 * i, 0)) for i in range(10)}
    assert len(draws) > 5


def test_shadowing_statistics_roughly_lognormal():
    field = ShadowingField(sigma_db=8, coherence_m=10, seed=7)
    a = Point(-10_000, -10_000)
    samples = [field.shadowing_db(a, Point(i * 25.0, 0)) for i in range(500)]
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    assert abs(mean) < 1.5
    assert 6.0 < var ** 0.5 < 10.0


def test_shadowing_validates():
    with pytest.raises(ValueError):
        ShadowingField(sigma_db=-1)
    with pytest.raises(ValueError):
        ShadowingField(coherence_m=0)
