"""HSS: the home subscriber server.

Holds the private subscriber database and mints authentication vectors
for MMEs over S6a. In the carrier architecture this is the component
whose secret-key custody "drives a need to securely store secret keys
and connection metadata" (§2.1) — the thing dLTE replaces with key
publication.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.crypto import generate_auth_vector
from repro.epc.nas import AuthInfoAnswer, AuthInfoRequest
from repro.epc.subscriber import SubscriberDb
from repro.simcore.simulator import Simulator


class Hss(ControlAgent):
    """Serial HSS agent answering S6a AuthInfoRequests."""

    def __init__(self, sim: Simulator, name: str = "hss",
                 service_time_s: float = 1e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.db = SubscriberDb()
        self._channels: Dict[str, ControlChannel] = {}  # peer name -> channel
        self._sqn: Dict[str, int] = {}
        self.vectors_issued = 0
        self.unknown_imsis = 0

    def connect_mme(self, channel: ControlChannel) -> None:
        """Register the S6a channel toward an MME."""
        peer = channel.other_end(self)
        self._channels[peer.name] = channel

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if isinstance(payload, AuthInfoRequest):
            self._answer_auth_info(message.sender.name, payload)

    def _answer_auth_info(self, mme_name: str, request: AuthInfoRequest) -> None:
        channel = self._channels.get(mme_name)
        if channel is None:
            return  # S6a from an unknown MME: drop (no peering)
        profile = self.db.lookup(request.imsi)
        if profile is None:
            self.unknown_imsis += 1
            answer = AuthInfoAnswer(ue_id=request.ue_id, cause="unknown-imsi")
        else:
            sqn = self._sqn.get(request.imsi, 0)
            self._sqn[request.imsi] = sqn + 1
            rand = bytes(self.sim.rng(f"hss:{self.name}").bytes(16))
            vector = generate_auth_vector(profile.key, rand, sqn=sqn)
            self.vectors_issued += 1
            answer = AuthInfoAnswer(ue_id=request.ue_id, vector=vector)
        channel.send(self, answer)
