"""Buildable, runnable networks for all four architectures.

Every network follows the same lifecycle::

    net = DLTENetwork.build(RuralTown(...), seed=1)
    report = net.run(duration_s=10.0)
    print(report.summary())

``build`` assembles topology + substrate; ``run`` executes three phases
and returns a :class:`NetworkReport`:

1. **control phase** — spectrum registration/peering (where applicable)
   and every UE's attach procedure, timed individually;
2. **radio phase** — per-TTI downlink scheduling (LTE) or CSMA contention
   (WiFi) to measure per-UE goodput;
3. **path phase** — pings from client hosts to an OTT server across the
   simulated Internet, measuring RTT, hop count, and tunnel overhead.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional

import numpy as np

from repro.coordination.cooperative import CooperativeCluster
from repro.core.access_point import AIR_DELAY_S, DLTEAccessPoint
from repro.core.capabilities import ArchitectureCapabilities
from repro.core.datapath import EnbDataPlane, EpcDataPlane
from repro.core.report import NetworkReport
from repro.enodeb.cell import Cell, UeRadioContext
from repro.enodeb.relay import EnbControlRelay
from repro.epc.agents import ControlChannel
from repro.epc.centralized import CentralizedEpc
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState, UserEquipment
from repro.geo.points import Point
from repro.mac.csma import CsmaNode, CsmaSimulation
from repro.net.addressing import AddressPool, IPv4Address
from repro.net.internet import InternetCore
from repro.net.nodes import Host, Router
from repro.net.packet import Packet
from repro.net.tunnel import GTP_HEADER_BYTES
from repro.phy.bands import get_band
from repro.phy.fading import ShadowingField
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import wifi_rate_for_snr
from repro.phy.propagation import model_for_frequency
from repro.simcore.simulator import Simulator
from repro.spectrum.sas import SasRegistry
from repro.workloads.topology import RuralTown

SERVER_PREFIX = "203.0.113.0/24"
SERVER_ADDR = ipaddress.IPv4Address("203.0.113.10")
#: TTIs simulated in the radio phase (200 ms of scheduling).
RADIO_PHASE_TTIS = 200


class _BaseNetwork:
    """Shared assembly: Internet core, OTT server, UE bookkeeping."""

    CAPABILITIES: ArchitectureCapabilities  # set by subclasses

    def __init__(self, sim: Simulator, town: RuralTown) -> None:
        self.sim = sim
        self.town = town
        self.internet = InternetCore(sim)
        # the OTT service the town's users actually talk to
        self.server_edge = Router(sim, "server-edge")
        self.internet.attach(self.server_edge, SERVER_PREFIX,
                             access_delay_s=0.005)
        self.server = Host(sim, "ott-server", SERVER_ADDR)
        self.server.connect_bidirectional(self.server_edge, rate_bps=1e9,
                                          delay_s=0.5e-3)
        self.server_edge.add_route(f"{SERVER_ADDR}/32", "ott-server")
        self._echo_hops: Dict[int, int] = {}
        self.server.on_packet = self._server_echo
        self.ue_hosts: Dict[str, Host] = {}
        self.ue_radios: Dict[str, Radio] = {}

    # -- OTT server ping service ---------------------------------------------------

    def _server_echo(self, packet: Packet) -> None:
        payload = packet.payload
        if not (isinstance(payload, dict) and payload.get("kind") == "ping"):
            return
        reply = Packet(src=self.server.address, dst=packet.src,
                       size_bytes=packet.size_bytes,
                       payload={"kind": "pong", "t0": payload["t0"],
                                "request_hops": packet.hop_count},
                       created_at=self.sim.now)
        self.server.send(reply)

    def _ping_phase(self, report: NetworkReport,
                    sample: Optional[int] = 10) -> None:
        """Ping the server from up to ``sample`` client hosts."""
        targets = sorted(self.ue_hosts)[:sample]
        pending = {}

        def make_handler(ue_id: str, host: Host):
            def on_packet(packet: Packet) -> None:
                payload = packet.payload
                if isinstance(payload, dict) and payload.get("kind") == "pong":
                    report.rtt_s[ue_id] = self.sim.now - payload["t0"]
                    report.hop_counts[ue_id] = payload["request_hops"]
            return on_packet

        for ue_id in targets:
            host = self.ue_hosts[ue_id]
            if host.address is None:
                continue
            host.on_packet = make_handler(ue_id, host)
            ping = Packet(src=host.address, dst=SERVER_ADDR, size_bytes=100,
                          payload={"kind": "ping", "t0": self.sim.now},
                          created_at=self.sim.now)
            host.send(ping)
            pending[ue_id] = True
        self.sim.run(until=self.sim.now + 5.0)

    # -- interface -----------------------------------------------------------------------

    def run(self, duration_s: float = 10.0) -> NetworkReport:
        """Execute all phases; subclasses implement the specifics."""
        raise NotImplementedError


class DLTENetwork(_BaseNetwork):
    """The paper's architecture: federated APs with local cores."""

    CAPABILITIES = ArchitectureCapabilities(
        name="dLTE", open_core=True, licensed_radio=True,
        coordinated_spectrum=True, in_network_mobility=False,
        link_layer_security=False, central_billing=False,
        pstn_interconnect=False, organic_growth=True)

    def __init__(self, sim: Simulator, town: RuralTown) -> None:
        super().__init__(sim, town)
        self.aps: Dict[str, DLTEAccessPoint] = {}
        self.ues: Dict[str, UserEquipment] = {}
        self.key_registry: Optional[PublishedKeyRegistry] = None
        self.spectrum_registry = None
        self.coordination_mode = "fair-sharing"
        self.cluster: Optional[CooperativeCluster] = None
        self._serving_ap: Dict[str, str] = {}

    @classmethod
    def build(cls, town: RuralTown, band_name: str = "lte5", seed: int = 0,
              coordination_mode: str = "fair-sharing",
              spectrum_registry=None,
              shadowing_sigma_db: float = 0.0) -> "DLTENetwork":
        """Assemble a dLTE federation over a town.

        ``coordination_mode``: ``"fair-sharing"`` (default),
        ``"cooperative"``, or ``"none"`` (the uncoordinated ablation —
        overlapping cells interfere).
        """
        if coordination_mode not in ("fair-sharing", "cooperative", "none"):
            raise ValueError(f"unknown coordination mode {coordination_mode!r}")
        sim = Simulator(seed)
        net = cls(sim, town)
        net.coordination_mode = coordination_mode
        band = get_band(band_name)
        net.key_registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.05)
        net.spectrum_registry = spectrum_registry or SasRegistry(sim)
        shadowing = (ShadowingField(shadowing_sigma_db, seed=seed)
                     if shadowing_sigma_db > 0 else None)

        for i, position in enumerate(town.ap_positions()):
            ap = DLTEAccessPoint(
                sim, f"ap{i}", position, band, net.internet,
                net.spectrum_registry, net.key_registry,
                pool_prefix=f"10.{i + 1}.0.0/16",
                backhaul_delay_s=town.backhaul_delay_s,
                backhaul_rate_bps=town.backhaul_rate_bps,
                shadowing=shadowing)
            net.aps[ap.ap_id] = ap

        ue_positions = town.ue_positions()
        for j, position in enumerate(ue_positions):
            profile = make_profile(f"9990100000{j:05d}", published=True)
            net.key_registry.publish(profile)
            ue = UserEquipment(sim, profile, name=f"ue{j}")
            host = Host(sim, f"ue{j}-host")
            radio = Radio(position, tx_power_dbm=23, height_m=1.5,
                          ul_papr_advantage_db=3.0)
            net.ues[ue.ue_id] = ue
            net.ue_hosts[ue.ue_id] = host
            net.ue_radios[ue.ue_id] = radio
            ap = net._nearest_ap(position)
            net._serving_ap[ue.ue_id] = ap.ap_id
            ap.connect_ue(ue, host, radio)
        return net

    def _nearest_ap(self, position: Point) -> DLTEAccessPoint:
        return min(self.aps.values(),
                   key=lambda ap: ap.position.distance_to(position))

    # -- §7 future work: multi-hop backhaul sharing --------------------------------

    def enable_mesh(self) -> None:
        """Build inter-AP radio links so APs can relay for each other.

        Every AP pair gets a point-to-point link whose rate comes from
        the elevated-antenna link budget at their separation (see
        ``repro.experiments.e11_mesh_backhaul.mesh_link_rate_bps``);
        pairs whose link budget yields no rate stay unconnected.
        """
        from repro.experiments.e11_mesh_backhaul import mesh_link_rate_bps

        ap_list = list(self.aps.values())
        for i, a in enumerate(ap_list):
            for b in ap_list[i + 1:]:
                rate = mesh_link_rate_bps(
                    a.position.distance_to(b.position))
                if rate <= 0:
                    continue
                a.router.connect_bidirectional(b.router, rate_bps=rate,
                                               delay_s=2e-3)

    def fail_backhaul(self, ap_id: str) -> None:
        """Cut one AP's Internet uplink; mesh (if enabled) takes over.

        The failed AP re-points its default route at a mesh neighbour;
        the neighbour routes the failed AP's client prefix back over the
        radio link; the Internet re-learns the prefix via the surviving
        gateway. Raises if the AP is isolated (no mesh links).
        """
        ap = self.aps[ap_id]
        # sever the uplink both ways
        ap.router.links.pop(self.internet.name, None)
        self.internet.links.pop(ap.router.name, None)
        self.internet.remove_routes_to(ap.router.name)
        # pick the surviving mesh neighbour (a peer AP router we still link)
        neighbors = [other for other in self.aps.values()
                     if other.ap_id != ap_id
                     and other.router.name in ap.router.links
                     and self.internet.links.get(other.router.name)
                     is not None]
        if not neighbors:
            raise RuntimeError(
                f"{ap_id} has no mesh path to a surviving gateway; call "
                f"enable_mesh() before failing backhaul")
        gateway = min(neighbors,
                      key=lambda o: ap.position.distance_to(o.position))
        ap.router.default_route = gateway.router.name
        gateway.router.add_route(str(ap.pool.network), ap.router.name)
        self.internet.add_route(str(ap.pool.network), gateway.router.name)

    # -- fault injection (E16 resilience) ---------------------------------------------

    def crash_ap(self, ap_id: str) -> None:
        """Power-fail one site: its stub, sessions, and clients go dark.

        Only this AP's UEs lose service — the federation's survivors keep
        running and, via their peer monitors, reclaim the spectrum.
        """
        self.aps[ap_id].crash()

    def restart_ap(self, ap_id: str,
                   retry_kwargs: Optional[dict] = None) -> None:
        """Power-restore a crashed site and bring its clients back.

        The AP replays its §4.3 lifecycle (license, peering, monitor);
        each UE it was serving reconnects at the radio and re-attaches
        under retry supervision (so clients that race the control-plane
        recovery back off and try again).
        """
        ap = self.aps[ap_id]
        ap.restart(directory=self.aps)
        kwargs = retry_kwargs or {}
        for ue_id, serving in self._serving_ap.items():
            if serving != ap_id:
                continue
            ue = self.ues[ue_id]
            ap.connect_ue(ue, self.ue_hosts[ue_id], self.ue_radios[ue_id])
            ue.start_attach_with_retry(**kwargs)

    # -- phases -----------------------------------------------------------------------

    def _control_phase(self, report: NetworkReport) -> None:
        granted = {"n": 0}

        def on_granted(_ok: bool) -> None:
            granted["n"] += 1
            if granted["n"] == len(self.aps):
                for ap in self.aps.values():
                    ap.discover_and_peer(self.aps)

        for ap in self.aps.values():
            ap.register_spectrum(on_granted)
        self.sim.run(until=self.sim.now + 2.0)

        # stagger attaches slightly to avoid a synthetic thundering herd
        for k, ue in enumerate(self.ues.values()):
            self.sim.schedule(0.010 * k, ue.start_attach)
        self.sim.run(until=self.sim.now + 5.0 + 0.010 * len(self.ues))

        for ue in self.ues.values():
            if ue.state is UeState.ATTACHED:
                report.attach_latencies_s.append(ue.attach_latency_s)
            else:
                report.attach_failures += 1

        if self.coordination_mode == "cooperative":
            self.cluster = CooperativeCluster()
            for ap in self.aps.values():
                self.cluster.join(ap.cell)
            self.cluster.optimize()
        elif self.coordination_mode == "none":
            cells = [ap.cell for ap in self.aps.values()]
            for ap in self.aps.values():
                ap.cell.allowed_prbs = ap.cell.grid.all_prbs
                ap.cell.interferers = [c for c in cells if c is not ap.cell]

        report.control_bytes = sum(ap.x2.bytes_sent for ap in self.aps.values())

    def _radio_phase(self, report: NetworkReport) -> None:
        results = {ap_id: [] for ap_id in self.aps}
        for _ in range(RADIO_PHASE_TTIS):
            for ap_id, ap in self.aps.items():
                results[ap_id].append(ap.cell.schedule_tti())
        for ap_id, ap in self.aps.items():
            report.throughput_bps.update(ap.cell.throughput_bps(results[ap_id]))

    def run(self, duration_s: float = 10.0) -> NetworkReport:
        report = NetworkReport(architecture="dLTE", n_aps=len(self.aps),
                               n_ues=len(self.ues))
        self._control_phase(report)
        self._radio_phase(report)
        self._ping_phase(report)
        report.extras["registry_fetches"] = sum(
            ap.stub.registry_fetches for ap in self.aps.values())
        report.extras["x2_peers_total"] = sum(
            len(ap.x2.peer_ids) for ap in self.aps.values())
        self.sim.run(until=max(self.sim.now, duration_s))
        return report


class CentralizedLTENetwork(_BaseNetwork):
    """Carrier LTE: one distant EPC, everything tunnels through it."""

    CAPABILITIES = ArchitectureCapabilities(
        name="Telecom LTE", open_core=False, licensed_radio=True,
        coordinated_spectrum=True, in_network_mobility=True,
        link_layer_security=True, central_billing=True,
        pstn_interconnect=True, organic_growth=False)

    #: where the UE pool lives (routed to the EPC site)
    UE_PREFIX = "10.200.0.0/16"
    EPC_TRANSPORT = "172.16.0.0/24"

    def __init__(self, sim: Simulator, town: RuralTown) -> None:
        super().__init__(sim, town)
        self.epc: Optional[CentralizedEpc] = None
        self.epc_data: Optional[EpcDataPlane] = None
        self.epc_router: Optional[Router] = None
        self.enb_relays: Dict[str, EnbControlRelay] = {}
        self.enb_data: Dict[str, EnbDataPlane] = {}
        self.cells: Dict[str, Cell] = {}
        self.ues: Dict[str, UserEquipment] = {}
        self._serving_ap: Dict[str, str] = {}

    @classmethod
    def build(cls, town: RuralTown, band_name: str = "lte5", seed: int = 0,
              epc_access_delay_s: float = 0.030,
              shadowing_sigma_db: float = 0.0) -> "CentralizedLTENetwork":
        """Assemble the carrier baseline: eNodeBs + one remote EPC."""
        sim = Simulator(seed)
        net = cls(sim, town)
        band = get_band(band_name)
        shadowing = (ShadowingField(shadowing_sigma_db, seed=seed)
                     if shadowing_sigma_db > 0 else None)

        # EPC site: control plane + user plane behind one edge router
        epc_router = Router(sim, "epc-gw")
        net.epc_router = epc_router
        net.internet.attach(epc_router, cls.UE_PREFIX,
                            access_delay_s=epc_access_delay_s)
        net.internet.add_route(cls.EPC_TRANSPORT, "epc-gw")
        net.epc = CentralizedEpc(sim, AddressPool(cls.UE_PREFIX))
        epc_data_addr = ipaddress.IPv4Address("172.16.0.1")
        net.epc_data = EpcDataPlane(sim, "epc-data", epc_data_addr,
                                    internet_via="epc-gw")
        net.epc_data.connect_bidirectional(epc_router, rate_bps=10e9,
                                           delay_s=0.05e-3)
        epc_router.add_route(f"{epc_data_addr}/32", "epc-data")
        epc_router.add_route(cls.UE_PREFIX, "epc-data")  # downlink hand-in
        epc_router.default_route = "internet"

        for i, position in enumerate(town.ap_positions()):
            net._build_site(i, position, band, shadowing, epc_access_delay_s)

        for j, position in enumerate(town.ue_positions()):
            profile = make_profile(f"0010100000{j:05d}")
            net.epc.provision(profile)
            ue = UserEquipment(sim, profile, name=f"ue{j}")
            host = Host(sim, f"ue{j}-host")
            radio = Radio(position, tx_power_dbm=23, height_m=1.5,
                          ul_papr_advantage_db=3.0)
            net.ues[ue.ue_id] = ue
            net.ue_hosts[ue.ue_id] = host
            net.ue_radios[ue.ue_id] = radio
            net._connect_ue(ue, host, radio)
        return net

    def _build_site(self, index: int, position: Point, band, shadowing,
                    epc_access_delay_s: float) -> None:
        sim = self.sim
        name = f"site{index}"
        router = Router(sim, f"{name}-gw")
        transport_prefix = f"172.17.{index}.0/24"
        self.internet.attach(router, transport_prefix,
                             access_delay_s=self.town.backhaul_delay_s,
                             access_rate_bps=self.town.backhaul_rate_bps)
        relay = EnbControlRelay(sim, f"{name}-enb")
        # S1-MME rides the same backhaul + EPC access path
        channel = self.epc.connect_enb(
            relay, backhaul_delay_s=self.town.backhaul_delay_s
            + epc_access_delay_s)
        relay.connect_core(channel)
        self.enb_relays[name] = relay

        enb_addr = ipaddress.IPv4Address(f"172.17.{index}.1")
        data = EnbDataPlane(sim, f"{name}-data", enb_addr,
                            epc_address=self.epc_data.address,
                            uplink_via=f"{name}-gw")
        data.connect_bidirectional(router, rate_bps=1e9, delay_s=0.05e-3)
        router.add_route(f"{enb_addr}/32", f"{name}-data")
        router.default_route = "internet"
        data.open_bearer()
        self.enb_data[name] = data

        budget = LinkBudget(model_for_frequency(band.dl_mhz),
                            freq_mhz=band.dl_mhz,
                            bandwidth_hz=band.bandwidth_hz,
                            shadowing=shadowing)
        self.cells[name] = Cell(f"{name}-cell", band, position, budget)

    def _nearest_site(self, position: Point) -> str:
        return min(self.cells, key=lambda n: self.cells[n].position
                   .distance_to(position))

    def _connect_ue(self, ue: UserEquipment, host: Host, radio: Radio) -> None:
        site = self._nearest_site(radio.position)
        self._serving_ap[ue.ue_id] = site
        relay = self.enb_relays[site]
        air = ControlChannel(self.sim, ue, relay, AIR_DELAY_S,
                             name=f"air:{ue.ue_id}")
        ue.connect_air(air)
        relay.attach_ue(ue.ue_id, air)
        self.cells[site].add_ue(UeRadioContext(ue_id=ue.ue_id, radio=radio))
        data = self.enb_data[site]
        host.connect_bidirectional(data, rate_bps=50e6, delay_s=AIR_DELAY_S)
        host.default_gateway = data.name
        ue.on_attached = self._on_ue_attached

    def _on_ue_attached(self, ue: UserEquipment) -> None:
        """Wire the user plane once the bearer exists."""
        site = self._serving_ap[ue.ue_id]
        host = self.ue_hosts[ue.ue_id]
        host.add_address(ue.ue_address)
        self.enb_data[site].register_ue(ue.ue_address, host)
        self.epc_data.register_ue(ue.ue_address,
                                  self.enb_data[site].address)

    # -- fault injection (E16 resilience) -----------------------------------------------

    def fail_epc(self) -> None:
        """Take the EPC site off the network (power/fiber cut).

        Every S1 channel and the EPC gateway's Internet uplink go down —
        the single-point-of-failure scenario dLTE's federation avoids:
        *all* sites lose both control and user plane at once, because
        every tunnel hairpins through this one building.
        """
        for channel in self.epc._s1_channels.values():
            channel.set_up(False)
        self.internet.links[self.epc_router.name].set_up(False)
        self.epc_router.links[self.internet.name].set_up(False)
        self.sim.trace("fault", "EPC site unreachable")

    def restore_epc(self) -> None:
        """Reconnect the EPC site (MME contexts survived — it is the
        *path* that failed, so re-attach is not required)."""
        for channel in self.epc._s1_channels.values():
            channel.set_up(True)
        self.internet.links[self.epc_router.name].set_up(True)
        self.epc_router.links[self.internet.name].set_up(True)
        self.sim.trace("fault", "EPC site restored")

    # -- phases ------------------------------------------------------------------------

    def _control_phase(self, report: NetworkReport) -> None:
        for k, ue in enumerate(self.ues.values()):
            self.sim.schedule(0.010 * k, ue.start_attach)
        self.sim.run(until=self.sim.now + 10.0 + 0.010 * len(self.ues))
        for ue in self.ues.values():
            if ue.state is UeState.ATTACHED:
                report.attach_latencies_s.append(ue.attach_latency_s)
            else:
                report.attach_failures += 1
        report.control_bytes = self.epc.control_bytes_on_backhaul

    def _radio_phase(self, report: NetworkReport) -> None:
        # the carrier coordinates its own cells: disjoint slices (ICIC)
        if len(self.cells) > 1:
            from repro.coordination.icic import reuse_partition
            partition = reuse_partition(
                [c.name for c in self.cells.values()],
                next(iter(self.cells.values())).grid.n_prbs,
                reuse_factor=min(3, len(self.cells)))
            for cell in self.cells.values():
                cell.allowed_prbs = partition[cell.name]
        results = {name: [] for name in self.cells}
        for _ in range(RADIO_PHASE_TTIS):
            for name, cell in self.cells.items():
                results[name].append(cell.schedule_tti())
        for name, cell in self.cells.items():
            report.throughput_bps.update(cell.throughput_bps(results[name]))

    def run(self, duration_s: float = 10.0) -> NetworkReport:
        report = NetworkReport(architecture=self.CAPABILITIES.name,
                               n_aps=len(self.cells), n_ues=len(self.ues))
        self._control_phase(report)
        self._radio_phase(report)
        self._ping_phase(report)
        report.tunnel_overhead_bytes = GTP_HEADER_BYTES
        report.extras["epc_uplink_packets"] = self.epc_data.uplink_packets
        self.sim.run(until=max(self.sim.now, duration_s))
        return report


class PrivateLTENetwork(CentralizedLTENetwork):
    """LTE-in-a-box: the EPC moves on-premises but stays closed (§6).

    Identical machinery to carrier LTE with a ~1 ms EPC access path; its
    capability flags are what differ — the core is still closed, so no
    outside AP can join.
    """

    CAPABILITIES = ArchitectureCapabilities(
        name="Private LTE", open_core=False, licensed_radio=True,
        coordinated_spectrum=True, in_network_mobility=True,
        link_layer_security=True, central_billing=False,
        pstn_interconnect=False, organic_growth=False)

    @classmethod
    def build(cls, town: RuralTown, band_name: str = "lte48cbrs",
              seed: int = 0, epc_access_delay_s: float = 0.001,
              shadowing_sigma_db: float = 0.0) -> "PrivateLTENetwork":
        """On-premises EPC: same build, short EPC access path."""
        return super().build(town, band_name=band_name, seed=seed,
                             epc_access_delay_s=epc_access_delay_s,
                             shadowing_sigma_db=shadowing_sigma_db)


class WiFiNetwork(_BaseNetwork):
    """Legacy WiFi: independent APs, CSMA, open joining, local breakout."""

    CAPABILITIES = ArchitectureCapabilities(
        name="Legacy WiFi", open_core=True, licensed_radio=False,
        coordinated_spectrum=False, in_network_mobility=False,
        link_layer_security=False, central_billing=False,
        pstn_interconnect=False, organic_growth=True)

    #: association + open auth + DHCP: three air round trips
    ASSOCIATION_EXCHANGES = 3
    #: carrier-sense threshold for the AP hearing graph
    CS_THRESHOLD_DBM = -82.0

    def __init__(self, sim: Simulator, town: RuralTown) -> None:
        super().__init__(sim, town)
        self.ap_routers: Dict[str, Router] = {}
        self.ap_radios: Dict[str, Radio] = {}
        self.ap_pools: Dict[str, AddressPool] = {}
        self.ap_clients: Dict[str, List[str]] = {}
        self._serving_ap: Dict[str, str] = {}
        self.association_latencies: Dict[str, float] = {}
        self.band = get_band("wifi2g4")
        self.budget: Optional[LinkBudget] = None

    @classmethod
    def build(cls, town: RuralTown, seed: int = 0,
              shadowing_sigma_db: float = 0.0) -> "WiFiNetwork":
        """Assemble independent WiFi APs over the same town."""
        sim = Simulator(seed)
        net = cls(sim, town)
        shadowing = (ShadowingField(shadowing_sigma_db, seed=seed)
                     if shadowing_sigma_db > 0 else None)
        net.budget = LinkBudget(
            model_for_frequency(net.band.dl_mhz),
            freq_mhz=net.band.dl_mhz, bandwidth_hz=net.band.bandwidth_hz,
            shadowing=shadowing)
        for i, position in enumerate(town.ap_positions()):
            ap_id = f"wifi{i}"
            router = Router(sim, f"{ap_id}-gw")
            net.internet.attach(router, f"10.{i + 1}.0.0/16",
                                access_delay_s=town.backhaul_delay_s,
                                access_rate_bps=town.backhaul_rate_bps)
            net.ap_routers[ap_id] = router
            net.ap_pools[ap_id] = AddressPool(f"10.{i + 1}.0.0/16")
            net.ap_radios[ap_id] = Radio(
                position, tx_power_dbm=23, antenna_gain_dbi=13,
                height_m=30.0, noise_figure_db=5.0)
            net.ap_clients[ap_id] = []
        for j, position in enumerate(town.ue_positions()):
            ue_id = f"ue{j}"
            host = Host(sim, f"{ue_id}-host")
            radio = Radio(position, tx_power_dbm=20, height_m=1.5)
            net.ue_hosts[ue_id] = host
            net.ue_radios[ue_id] = radio
            ap_id = net._strongest_ap(radio)
            net._serving_ap[ue_id] = ap_id
            net.ap_clients[ap_id].append(ue_id)
            host.connect_bidirectional(net.ap_routers[ap_id], rate_bps=50e6,
                                       delay_s=2e-3)
            host.default_gateway = net.ap_routers[ap_id].name
        return net

    def _strongest_ap(self, ue_radio: Radio) -> str:
        return max(self.ap_radios,
                   key=lambda ap: self.budget.rx_power_dbm(
                       self.ap_radios[ap], ue_radio))

    # -- phases ---------------------------------------------------------------------------

    def _associate(self, ue_id: str):
        """Association + DHCP as a process; allocates the address."""
        started = self.sim.now
        for _ in range(self.ASSOCIATION_EXCHANGES):
            yield self.sim.timeout(2 * AIR_DELAY_S + 1e-3)
        ap_id = self._serving_ap[ue_id]
        address = self.ap_pools[ap_id].allocate()
        host = self.ue_hosts[ue_id]
        host.add_address(address)
        self.ap_routers[ap_id].add_route(f"{address}/32", host.name)
        self.association_latencies[ue_id] = self.sim.now - started

    def _control_phase(self, report: NetworkReport) -> None:
        for k, ue_id in enumerate(sorted(self.ue_hosts)):
            self.sim.schedule(0.010 * k, lambda u=ue_id: self.sim.process(
                self._associate(u), name=f"assoc:{u}"))
        self.sim.run(until=self.sim.now + 2.0 + 0.010 * len(self.ue_hosts))
        report.attach_latencies_s = list(self.association_latencies.values())
        report.attach_failures = (len(self.ue_hosts)
                                  - len(self.association_latencies))

    def _hearing_graph(self) -> Dict[str, set]:
        hears: Dict[str, set] = {ap: set() for ap in self.ap_radios}
        for a in self.ap_radios:
            for b in self.ap_radios:
                if a == b:
                    continue
                rx = self.budget.rx_power_dbm(self.ap_radios[b],
                                              self.ap_radios[a])
                if rx > self.CS_THRESHOLD_DBM:
                    hears[a].add(b)
        return hears

    def _radio_phase(self, report: NetworkReport) -> None:
        """CSMA airtime shares x per-UE PHY rate."""
        hears = self._hearing_graph()
        nodes = [CsmaNode(ap, hears=frozenset(hears[ap]))
                 for ap in self.ap_radios if self.ap_clients[ap]]
        if not nodes:
            return
        csma = CsmaSimulation(nodes, self.sim.rng("wifi-csma"),
                              frame_slots=50)
        result = csma.run(100_000)
        for ap_id in self.ap_radios:
            clients = self.ap_clients[ap_id]
            if not clients:
                continue
            share = (result.delivered.get(ap_id, 0) * result.frame_slots
                     / result.slots)
            for ue_id in clients:
                snr = self.budget.snr_db(self.ap_radios[ap_id],
                                         self.ue_radios[ue_id])
                phy = wifi_rate_for_snr(snr, self.band.bandwidth_hz)
                report.throughput_bps[ue_id] = (
                    phy * share * 0.7 / len(clients))  # 0.7: MAC efficiency
        report.extras["csma_collision_rate"] = result.collision_rate

    def run(self, duration_s: float = 10.0) -> NetworkReport:
        report = NetworkReport(architecture=self.CAPABILITIES.name,
                               n_aps=len(self.ap_radios),
                               n_ues=len(self.ue_hosts))
        self._control_phase(report)
        self._radio_phase(report)
        self._ping_phase(report)
        self.sim.run(until=max(self.sim.now, duration_s))
        return report
