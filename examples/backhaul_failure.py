#!/usr/bin/env python
"""Backhaul failure in a meshed federation: nobody goes dark (§7).

"Such networks could provide redundancy for users in emergencies when
the backhaul link goes down."

A two-AP town with inter-AP mesh radio links enabled. We ping an OTT
server from a client of each AP, cut one AP's Internet uplink, and ping
again: the victims' traffic silently reroutes over the mesh through the
surviving AP's uplink — longer path, same Internet.

Run:  python examples/backhaul_failure.py
"""

import ipaddress

from repro import DLTENetwork, RuralTown
from repro.core.network import SERVER_ADDR
from repro.net import Packet


def ping(net, ue_id, label):
    host = net.ue_hosts[ue_id]
    if host.address is None:
        print(f"  {ue_id}: no address (not attached)")
        return
    got = []
    host.on_packet = lambda p: got.append((net.sim.now, p))
    t0 = net.sim.now
    host.send(Packet(src=host.address, dst=SERVER_ADDR, size_bytes=100,
                     payload={"kind": "ping", "t0": t0}, created_at=t0))
    net.sim.run(until=t0 + 5.0)
    pongs = [(t, p) for t, p in got if isinstance(p.payload, dict)
             and p.payload.get("kind") == "pong"]
    if not pongs:
        print(f"  {ue_id} ({label}): UNREACHABLE")
        return
    arrived, reply = pongs[0]
    gateways = {h for h in reply.hops if h.endswith("-gw")}
    path = " via both AP gateways" if len(gateways) > 1 else ""
    print(f"  {ue_id} ({label}): rtt {(arrived - t0) * 1e3:.1f} ms, "
          f"{reply.payload['request_hops']} hops{path}")


def main() -> None:
    town = RuralTown(radius_m=2000, n_ues=8, n_aps=2, seed=9)
    net = DLTENetwork.build(town, seed=9)
    net.run(duration_s=3.0)
    net.enable_mesh()

    by_ap = {ap_id: [ue for ue, host in net.ue_hosts.items()
                     if host.address is not None
                     and net.aps[ap_id].pool.contains(host.address)]
             for ap_id in net.aps}
    print("Clients per AP:", {k: len(v) for k, v in by_ap.items()})
    sample = {ap_id: ues[0] for ap_id, ues in by_ap.items() if ues}

    print("\nBefore the failure:")
    for ap_id, ue in sample.items():
        ping(net, ue, f"on {ap_id}")

    victim = "ap1" if by_ap.get("ap1") else "ap0"
    print(f"\n*** {victim}'s fiber gets cut ***\n")
    net.fail_backhaul(victim)

    print("After the failure:")
    for ap_id, ue in sample.items():
        ping(net, ue, f"on {ap_id}" + (" (victim)" if ap_id == victim else ""))

    print("\nThe victim AP's clients kept their addresses and their")
    print("Internet — their packets now take the mesh hop through the")
    print("neighbour's uplink. No operator intervened; the federation")
    print("just has more than one way out (§7).")


if __name__ == "__main__":
    main()
