"""Integration tests: the full EPS attach against both core shapes."""

import pytest

from repro.enodeb import EnbControlRelay
from repro.epc import (
    CentralizedEpc,
    LocalCoreStub,
    PublishedKeyRegistry,
    UserEquipment,
)
from repro.epc.agents import ControlChannel
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState
from repro.net import AddressPool
from repro.simcore import Simulator

AIR_DELAY = 0.005


def build_centralized(sim, backhaul_s=0.03, pool_prefix="10.0.0.0/16",
                      n_enbs=1):
    epc = CentralizedEpc(sim, AddressPool(pool_prefix))
    enbs = []
    for i in range(n_enbs):
        enb = EnbControlRelay(sim, f"enb{i}")
        channel = epc.connect_enb(enb, backhaul_delay_s=backhaul_s)
        enb.connect_core(channel)
        enbs.append(enb)
    return epc, enbs


def attach_ue(sim, enb, profile):
    ue = UserEquipment(sim, profile)
    air = ControlChannel(sim, ue, enb, AIR_DELAY, f"air:{ue.name}")
    ue.connect_air(air)
    enb.attach_ue(ue.ue_id, air)
    ue.start_attach()
    return ue


def build_stub(sim, registry=None, pool_prefix="100.64.0.0/24"):
    stub = LocalCoreStub(sim, "stub", AddressPool(pool_prefix),
                         registry=registry)
    enb = EnbControlRelay(sim, "enb0")
    s1 = ControlChannel(sim, enb, stub, 0.1e-3, "s1-local")
    enb.connect_core(s1)
    stub.connect_enb(s1)
    return stub, enb


# -- centralized attach ------------------------------------------------------------

def test_centralized_attach_succeeds():
    sim = Simulator(1)
    epc, (enb,) = build_centralized(sim)
    prof = make_profile("001010000000001")
    epc.provision(prof)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    assert ue.state is UeState.ATTACHED
    assert ue.ue_address is not None
    assert epc.pgw.pool.contains(ue.ue_address)
    assert epc.mme.attaches_completed == 1
    assert epc.attached_ues == 1


def test_centralized_attach_latency_scales_with_backhaul():
    """Every NAS round trip crosses the backhaul: latency ~ k x delay."""
    latencies = {}
    for backhaul in (0.01, 0.05):
        sim = Simulator(1)
        epc, (enb,) = build_centralized(sim, backhaul_s=backhaul)
        prof = make_profile("001010000000001")
        epc.provision(prof)
        ue = attach_ue(sim, enb, prof)
        sim.run(until=10)
        latencies[backhaul] = ue.attach_latency_s
    # 6 one-way backhaul crossings before AttachAccept reaches the UE
    slope = (latencies[0.05] - latencies[0.01]) / 0.04
    assert slope == pytest.approx(6.0, abs=0.5)


def test_unknown_imsi_rejected():
    sim = Simulator(1)
    epc, (enb,) = build_centralized(sim)
    stranger = make_profile("001019999999999")  # never provisioned
    ue = attach_ue(sim, enb, stranger)
    sim.run(until=5)
    assert ue.state is UeState.REJECTED
    assert epc.mme.attaches_rejected == 1
    assert epc.hss.unknown_imsis == 1


def test_wrong_key_rejected():
    """A provisioned IMSI with a different K fails AKA both ways."""
    sim = Simulator(1)
    epc, (enb,) = build_centralized(sim)
    real = make_profile("001010000000001")
    epc.provision(real)
    imposter_profile = make_profile("001010000000002")
    # clone the IMSI but with the wrong key
    from repro.epc.subscriber import SubscriberProfile
    imposter = SubscriberProfile(imsi=real.imsi, key=imposter_profile.key)
    ue = attach_ue(sim, enb, imposter)
    sim.run(until=5)
    # the UE itself refuses first: the network's AUTN fails against its K
    assert ue.state is UeState.REJECTED
    assert ue.network_auth_failures == 1


def test_pool_exhaustion_rejects_attach():
    sim = Simulator(1)
    epc, (enb,) = build_centralized(sim, pool_prefix="10.0.0.0/30")  # 2 hosts
    ues = []
    for i in range(3):
        prof = make_profile(f"00101000000000{i+1}")
        epc.provision(prof)
        ues.append(attach_ue(sim, enb, prof))
    sim.run(until=5)
    states = sorted(u.state.value for u in ues)
    assert states.count("attached") == 2
    assert states.count("rejected") == 1
    assert epc.pgw.rejected == 1


def test_detach_releases_address():
    sim = Simulator(1)
    epc, (enb,) = build_centralized(sim)
    prof = make_profile("001010000000001")
    epc.provision(prof)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    assert epc.pgw.pool.in_use == 1
    ue.detach()
    sim.run(until=10)
    assert epc.pgw.pool.in_use == 0
    assert ue.state is UeState.IDLE


def test_many_ues_attach_through_one_core():
    sim = Simulator(2)
    epc, enbs = build_centralized(sim, n_enbs=4)
    ues = []
    for i in range(40):
        prof = make_profile(f"0010100000{i:05d}")
        epc.provision(prof)
        ues.append(attach_ue(sim, enbs[i % 4], prof))
    sim.run(until=30)
    assert all(u.state is UeState.ATTACHED for u in ues)
    assert len({u.ue_address for u in ues}) == 40  # unique addresses
    assert epc.mme.peak_queue_depth > 1            # the shared core queued


# -- dLTE stub attach ------------------------------------------------------------------

def test_stub_attach_via_published_key():
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.05)
    prof = make_profile("001010000000042", published=True)
    registry.publish(prof)
    stub, enb = build_stub(sim, registry)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    assert ue.state is UeState.ATTACHED
    assert stub.pool.contains(ue.ue_address)
    assert stub.registry_fetches == 1
    assert stub.attaches_completed == 1


def test_stub_caches_published_keys():
    """Second attach of the same IMSI skips the registry RTT."""
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.05)
    prof = make_profile("001010000000042", published=True)
    registry.publish(prof)
    stub, enb = build_stub(sim, registry)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    first_latency = ue.attach_latency_s
    ue.detach()
    sim.run(until=6)
    ue.start_attach()
    sim.run(until=12)
    assert ue.state is UeState.ATTACHED
    assert stub.registry_fetches == 1  # no second fetch
    assert stub.cache_hits == 1
    assert ue.attach_latency_s < first_latency


def test_stub_rejects_unpublished_users():
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.02)
    stub, enb = build_stub(sim, registry)
    private = make_profile("001010000000050", published=False)
    ue = attach_ue(sim, enb, private)
    sim.run(until=5)
    assert ue.state is UeState.REJECTED
    assert stub.attaches_rejected == 1


def test_stub_without_registry_uses_preloaded_keys():
    sim = Simulator(1)
    stub, enb = build_stub(sim, registry=None)
    prof = make_profile("001010000000060")
    stub.preload_key(prof.imsi, prof.key)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    assert ue.state is UeState.ATTACHED
    assert stub.cache_hits == 1


def test_stub_attach_much_faster_than_centralized():
    """§4.1: collapsing the core removes the backhaul round trips."""
    sim_c = Simulator(1)
    epc, (enb_c,) = build_centralized(sim_c, backhaul_s=0.03)
    prof = make_profile("001010000000001")
    epc.provision(prof)
    ue_c = attach_ue(sim_c, enb_c, prof)
    sim_c.run(until=5)

    sim_s = Simulator(1)
    stub, enb_s = build_stub(sim_s)
    prof_s = make_profile("001010000000002", published=True)
    stub.preload_key(prof_s.imsi, prof_s.key)
    ue_s = attach_ue(sim_s, enb_s, prof_s)
    sim_s.run(until=5)

    assert ue_s.attach_latency_s < ue_c.attach_latency_s / 3


def test_stub_detach_releases_local_address():
    sim = Simulator(1)
    stub, enb = build_stub(sim)
    prof = make_profile("001010000000070")
    stub.preload_key(prof.imsi, prof.key)
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    assert stub.pool.in_use == 1
    ue.detach()
    sim.run(until=10)
    assert stub.pool.in_use == 0
    assert ue.ue_id not in stub.sessions


def test_stub_session_callbacks_fire():
    sim = Simulator(1)
    stub, enb = build_stub(sim)
    prof = make_profile("001010000000080")
    stub.preload_key(prof.imsi, prof.key)
    created, deleted = [], []
    stub.on_session_created = lambda ue_id, addr: created.append((ue_id, addr))
    stub.on_session_deleted = deleted.append
    ue = attach_ue(sim, enb, prof)
    sim.run(until=5)
    ue.detach()
    sim.run(until=10)
    assert created and created[0][0] == ue.ue_id
    assert deleted == [ue.ue_id]
