"""Unit tests for link budget and resource grid."""

import pytest

from repro.geo import Point
from repro.phy import (
    FreeSpace,
    LinkBudget,
    OkumuraHata,
    Radio,
    ResourceGrid,
    ShadowingField,
    prbs_for_bandwidth,
    sinr_db,
)
from repro.phy.resource_grid import TTI_S, bits_per_prb


def _ap(x=0.0, **kw):
    defaults = dict(tx_power_dbm=43, antenna_gain_dbi=15, height_m=30)
    defaults.update(kw)
    return Radio(Point(x, 0), **defaults)


def _ue(x, **kw):
    defaults = dict(tx_power_dbm=23, antenna_gain_dbi=0, height_m=1.5)
    defaults.update(kw)
    return Radio(Point(x, 0), **defaults)


def test_eirp_sums_components():
    r = Radio(Point(0, 0), tx_power_dbm=30, antenna_gain_dbi=10,
              cable_loss_db=2, ul_papr_advantage_db=3)
    assert r.eirp_dbm == 41.0


def test_rx_power_decreases_with_distance():
    lb = LinkBudget(FreeSpace(), freq_mhz=850, bandwidth_hz=10e6)
    ap = _ap()
    near = lb.rx_power_dbm(ap, _ue(100))
    far = lb.rx_power_dbm(ap, _ue(10_000))
    assert near > far


def test_snr_uses_bandwidth_noise():
    narrow = LinkBudget(FreeSpace(), 850, bandwidth_hz=1.4e6)
    wide = LinkBudget(FreeSpace(), 850, bandwidth_hz=20e6)
    ap, ue = _ap(), _ue(1000)
    # narrower bandwidth -> less noise -> better SNR
    assert narrow.snr_db(ap, ue) > wide.snr_db(ap, ue)


def test_sinr_combiner_math():
    # signal -90, one interferer -100, noise -104: SINR ~ 8.5 dB
    out = sinr_db(-90.0, [-100.0], -104.0)
    assert out == pytest.approx(8.5, abs=0.3)


def test_sinr_no_interference_equals_snr():
    lb = LinkBudget(FreeSpace(), 850, 10e6)
    ap, ue = _ap(), _ue(2000)
    assert lb.sinr_db(ap, ue) == pytest.approx(lb.snr_db(ap, ue))


def test_sinr_interferer_hurts():
    lb = LinkBudget(FreeSpace(), 850, 10e6)
    ap, ue = _ap(), _ue(3000)
    rogue = _ap(x=6000)
    assert lb.sinr_db(ap, ue, interferers=[rogue]) < lb.snr_db(ap, ue)


def test_sinr_self_excluded_from_interference():
    lb = LinkBudget(FreeSpace(), 850, 10e6)
    ap, ue = _ap(), _ue(3000)
    assert lb.sinr_db(ap, ue, interferers=[ap]) == pytest.approx(lb.snr_db(ap, ue))


def test_shadowing_applied_when_configured():
    shadow = ShadowingField(sigma_db=8, seed=9)
    plain = LinkBudget(OkumuraHata(environment="open"), 850, 10e6)
    shaded = LinkBudget(OkumuraHata(environment="open"), 850, 10e6,
                        shadowing=shadow)
    ap, ue = _ap(), _ue(4000)
    delta = plain.rx_power_dbm(ap, ue) - shaded.rx_power_dbm(ap, ue)
    assert delta == pytest.approx(shadow.shadowing_db(ap.position, ue.position))


def test_scfdma_papr_advantage_extends_uplink():
    """§3.2: SC-FDMA allows higher power transmission from mobiles."""
    lb = LinkBudget(OkumuraHata(environment="open"), 850, 10e6)
    ap = _ap()
    lte_ue = _ue(8000, ul_papr_advantage_db=3.0)
    ofdm_ue = _ue(8000, ul_papr_advantage_db=0.0)
    assert (lb.snr_db(lte_ue, ap) - lb.snr_db(ofdm_ue, ap)
            == pytest.approx(3.0))


# -- resource grid ---------------------------------------------------------------

def test_standard_bandwidth_prb_counts():
    assert prbs_for_bandwidth(1.4e6) == 6
    assert prbs_for_bandwidth(5e6) == 25
    assert prbs_for_bandwidth(10e6) == 50
    assert prbs_for_bandwidth(20e6) == 100


def test_nonstandard_bandwidth_rejected():
    with pytest.raises(ValueError, match="7"):
        prbs_for_bandwidth(7e6)


def test_bits_per_prb():
    # 1 bps/Hz over 180 kHz for 1 ms = 180 bits
    assert bits_per_prb(1.0) == pytest.approx(180.0)
    assert bits_per_prb(0.0) == 0.0
    with pytest.raises(ValueError):
        bits_per_prb(-1)


def test_tti_is_one_ms():
    assert TTI_S == 1e-3


def test_grid_reserve_and_release():
    grid = ResourceGrid(5e6)
    got = grid.reserve("me", range(0, 10))
    assert got == frozenset(range(10))
    assert grid.reserved_prbs == frozenset(range(10))
    assert grid.unreserved_prbs == frozenset(range(10, 25))
    grid.release("me")
    assert grid.reserved_prbs == frozenset()


def test_grid_rejects_overlap():
    grid = ResourceGrid(5e6)
    grid.reserve("a", range(0, 10))
    with pytest.raises(ValueError, match="already reserved"):
        grid.reserve("b", range(5, 15))


def test_grid_rejects_double_owner():
    grid = ResourceGrid(5e6)
    grid.reserve("a", range(0, 5))
    with pytest.raises(ValueError, match="already holds"):
        grid.reserve("a", range(10, 15))


def test_grid_rejects_out_of_range():
    grid = ResourceGrid(5e6)
    with pytest.raises(ValueError, match="out of range"):
        grid.reserve("a", [25])


def test_partition_equal_covers_grid_disjointly():
    grid = ResourceGrid(10e6)  # 50 PRBs
    parts = grid.partition_equal(["a", "b", "c"])
    sizes = sorted(len(p) for p in parts.values())
    assert sizes == [16, 17, 17]
    union = frozenset().union(*parts.values())
    assert union == grid.all_prbs
    assert sum(len(p) for p in parts.values()) == 50  # disjoint


def test_partition_replaces_prior_reservations():
    grid = ResourceGrid(5e6)
    grid.reserve("old", range(25))
    parts = grid.partition_equal(["x", "y"])
    assert grid.reservation("old") == frozenset()
    assert len(parts["x"]) + len(parts["y"]) == 25


def test_partition_zero_owners_rejected():
    with pytest.raises(ValueError):
        ResourceGrid(5e6).partition_equal([])
