"""Bench F1 — the Figure-1 user-plane path comparison."""

from conftest import emit, once

from repro.experiments import f1_path_comparison


def test_f1_path_comparison(benchmark):
    table = once(benchmark, f1_path_comparison.run)
    emit(table)
    dlte = table.rows[0]
    carriers = table.rows[1:]
    assert dlte["architecture"] == "dLTE"
    # dLTE beats every carrier configuration on RTT and path length
    for row in carriers:
        assert dlte["rtt_ms"] < row["rtt_ms"]
        assert dlte["hops"] < row["hops"]
        assert dlte["attach_ms"] < row["attach_ms"]
    # the carrier penalty grows with EPC distance; dLTE is independent of it
    rtts = [row["rtt_ms"] for row in carriers]
    assert rtts == sorted(rtts)
    # each ms of EPC access delay costs ~4 ms of ping RTT (2 tunnel
    # crossings each way)
    slope = (carriers[-1]["rtt_ms"] - carriers[0]["rtt_ms"]) / (60.0 - 10.0)
    assert 3.0 < slope < 5.0
    # GTP overhead only on the carrier path
    assert dlte["tunnel_overhead_B"] == 0
    assert all(row["tunnel_overhead_B"] == 36 for row in carriers)


def test_f1_local_breakout_ablation(benchmark):
    table = once(benchmark, f1_path_comparison.local_breakout_ablation)
    emit(table)
    by_arch = {row["architecture"]: row for row in table.rows}
    # an on-premises EPC nearly closes the latency gap (the penalty is
    # the tunnel geometry, not the stub software)
    assert by_arch["Private LTE"]["rtt_ms"] < by_arch["Telecom LTE"]["rtt_ms"] / 2
    assert by_arch["dLTE"]["rtt_ms"] < by_arch["Private LTE"]["rtt_ms"]
