"""Runtime invariant checker: conservation laws audited mid-run.

Chaos runs are only trustworthy if the simulation stays *internally
consistent* while being broken on purpose — a fault campaign that
silently leaks packets or teleports the clock proves nothing about
resilience. :class:`InvariantChecker` registers conservation checks
against live components and sweeps them periodically on the simulated
clock (plus once at the end via :meth:`verify`):

* **packet conservation** (:meth:`watch_link`): at any instant
  ``offered == delivered + dropped + in_flight`` and every drop is
  attributed to a cause (``overflow + down + loss + aqm == dropped``);
  managed links (AQM/ECN/``queue_bytes``) additionally satisfy the same
  law in *bytes* — marking instead of dropping must not leak a byte;
* **NAT accounting** (:meth:`watch_nat`): bindings only exist for
  flows that translated outbound;
* **tunnel conservation** (:meth:`watch_tunnel`): across all watched
  endpoints, no packet is decapsulated that was never encapsulated;
* **event-clock monotonicity** (:meth:`watch_clock`): ``sim.now`` never
  runs backwards and nothing is queued in the past;
* **spectrum-grant sanity and non-overlap** (see
  :func:`repro.invariants.network.watch_federation`);
* **NAS attach-state legality** (:meth:`watch_ue`): a UE can only
  become ATTACHED from ATTACHING — checked on every transition via the
  UE's state observer hook, not by sampling.

Passivity: checks read counters, draw no randomness, and schedule only
their own sweep process, so an instrumented run's tables are
byte-identical to an uninstrumented one; with no checker armed the
simulation pays nothing (the hooks are dormant attribute tests off the
per-event path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.simcore.simulator import Simulator

__all__ = ["InvariantChecker", "InvariantError", "InvariantViolation"]


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach: which law, on what, and how it failed."""

    time_s: float
    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.time_s:10.3f}] {self.check} on {self.subject}: "
                f"{self.detail}")


class InvariantError(AssertionError):
    """Raised by :meth:`InvariantChecker.verify` when any law broke."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(violations)} invariant violation(s):"]
        lines.extend(str(violation) for violation in violations[:20])
        if len(violations) > 20:
            lines.append(f"... and {len(violations) - 20} more")
        super().__init__("\n".join(lines))


class InvariantChecker:
    """Registers conservation checks and sweeps them on the sim clock.

    Each check is a callable returning a list of violation detail
    strings (empty = law holds). Violations are recorded (``.violations``),
    counted in the simulator's metrics (``invariants.violations``),
    and traced (``sim.trace("invariant", ...)``); they never mutate
    simulation state, so an armed checker changes no tables.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._checks: List[tuple] = []  # (name, subject, fn)
        self._sweeping = False
        # lazily created so a clean checker leaves metrics untouched
        self._m_violations = None

    # -- registration ------------------------------------------------------

    def register(self, name: str, subject: str,
                 fn: Callable[[], List[str]]) -> None:
        """Add a check; ``fn()`` returns violation details (empty = ok)."""
        self._checks.append((name, subject, fn))

    def watch_link(self, link: Any) -> None:
        """Audit a :class:`~repro.net.links.Link`'s conservation law."""

        def check() -> List[str]:
            problems = []
            causes = (link.dropped_overflow + link.dropped_down
                      + link.dropped_loss + link.dropped_aqm)
            if causes != link.dropped:
                problems.append(
                    f"unattributed drops: {link.dropped} total != "
                    f"{causes} by cause (overflow={link.dropped_overflow} "
                    f"down={link.dropped_down} loss={link.dropped_loss} "
                    f"aqm={link.dropped_aqm})")
            accounted = link.delivered + link.dropped + link.in_flight
            if accounted != link.offered:
                problems.append(
                    f"packet leak: offered={link.offered} != "
                    f"delivered={link.delivered} + dropped={link.dropped} "
                    f"+ in_flight={link.in_flight}")
            if link.in_flight < 0:
                problems.append(f"negative in_flight: {link.in_flight}")
            if link.queue_depth > link.queue_packets:
                problems.append(
                    f"queue over capacity: {link.queue_depth} > "
                    f"{link.queue_packets}")
            if link._managed:
                # managed links (AQM / queue_bytes) carry the same
                # conservation law in bytes — an AQM that marks instead
                # of dropping must not disturb it, and a byte-capacity
                # limit must actually bound the queue
                accounted_b = (link.delivered_bytes + link.dropped_bytes
                               + link.in_flight_bytes)
                if accounted_b != link.offered_bytes:
                    problems.append(
                        f"byte leak: offered={link.offered_bytes} != "
                        f"delivered={link.delivered_bytes} + "
                        f"dropped={link.dropped_bytes} + "
                        f"in_flight={link.in_flight_bytes}")
                if link.in_flight_bytes < 0:
                    problems.append(
                        f"negative in_flight_bytes: {link.in_flight_bytes}")
                if (link.queue_bytes is not None
                        and link._egress_bytes > link.queue_bytes):
                    problems.append(
                        f"queue over byte capacity: {link._egress_bytes} > "
                        f"{link.queue_bytes}")
                if link.marked_ecn < 0 or link.dropped_aqm < 0:
                    problems.append("negative AQM counter")
            return problems

        self.register("link-conservation", link.name, check)

    def watch_agent(self, agent: Any) -> None:
        """Audit a :class:`~repro.epc.agents.ControlAgent`'s message
        conservation: every offer is served, shed (with a cause), or
        still in flight — overload protection may drop, never leak."""

        def check() -> List[str]:
            problems = []
            by_cause = sum(agent.shed_by_cause.values())
            if by_cause != agent.shed:
                problems.append(
                    f"unattributed sheds: {agent.shed} total != "
                    f"{by_cause} by cause ({dict(agent.shed_by_cause)})")
            in_flight = agent.in_flight
            accounted = agent.processed + agent.shed + in_flight
            if accounted != agent.enqueued:
                problems.append(
                    f"message leak: enqueued={agent.enqueued} != "
                    f"served={agent.processed} + shed={agent.shed} "
                    f"+ in_queue={in_flight}")
            if in_flight < 0:
                problems.append(f"negative in_flight: {in_flight}")
            return problems

        self.register("agent-conservation", agent.name, check)

    def watch_nat(self, nat: Any) -> None:
        """Audit a :class:`~repro.net.nat.NatRouter`'s binding accounting."""

        def check() -> List[str]:
            problems = []
            if nat.active_bindings > nat.translated_out:
                problems.append(
                    f"bindings without outbound translations: "
                    f"{nat.active_bindings} bindings > "
                    f"{nat.translated_out} translated out")
            if min(nat.translated_in, nat.translated_out,
                   nat.unsolicited_drops) < 0:
                problems.append("negative NAT counter")
            return problems

        self.register("nat-accounting", nat.name, check)

    def watch_tunnel(self, endpoint: Any, name: str = "") -> None:
        """Include a :class:`TunnelEndpoint` in GTP conservation.

        The law is aggregate — every decapsulation pops a layer some
        watched endpoint pushed — so endpoints register into one shared
        check installed on first use.
        """
        if not hasattr(self, "_tunnel_endpoints"):
            self._tunnel_endpoints: List[Any] = []

            def check() -> List[str]:
                encapsulated = sum(e.encapsulated
                                   for e in self._tunnel_endpoints)
                decapsulated = sum(e.decapsulated
                                   for e in self._tunnel_endpoints)
                if decapsulated > encapsulated:
                    return [f"decapsulated {decapsulated} packets but only "
                            f"{encapsulated} were ever encapsulated"]
                return []

            self.register("gtp-conservation", "all-endpoints", check)
        self._tunnel_endpoints.append(endpoint)

    def watch_clock(self) -> None:
        """Audit event-clock monotonicity and run-queue discipline."""
        last = {"now": self.sim.now}

        def check() -> List[str]:
            problems = []
            now = self.sim.now
            if now < last["now"]:
                problems.append(
                    f"clock ran backwards: {now} < {last['now']}")
            last["now"] = now
            heap = self.sim._heap
            if heap and heap[0][0] < now:
                problems.append(
                    f"event queued in the past: head at {heap[0][0]} "
                    f"< now {now}")
            return problems

        self.register("clock-monotonicity", "simulator", check)

    def watch_ue(self, ue: Any) -> None:
        """Audit a UE's NAS transitions as they happen (not sampled)."""
        from repro.epc.ue import UeState

        def on_transition(subject, old: UeState, new: UeState) -> None:
            if new is UeState.ATTACHED and old not in (UeState.ATTACHING,
                                                       UeState.ATTACHED):
                self._record("nas-legality", subject.name,
                             f"illegal transition {old.value} -> "
                             f"{new.value}: ATTACHED is only reachable "
                             f"from ATTACHING")
            self.checks_run += 1

        ue._state_observer = on_transition

    # -- execution ---------------------------------------------------------

    def _record(self, check: str, subject: str, detail: str) -> None:
        violation = InvariantViolation(time_s=self.sim.now, check=check,
                                       subject=subject, detail=detail)
        self.violations.append(violation)
        if self._m_violations is None:
            self._m_violations = self.sim.metrics.counter(
                "invariants.violations")
        self._m_violations.inc()
        self.sim.trace("invariant", f"{check} violated on {subject}",
                       detail=detail)

    def check_now(self) -> List[InvariantViolation]:
        """Run every registered check once; returns new violations."""
        before = len(self.violations)
        for name, subject, fn in self._checks:
            self.checks_run += 1
            for detail in fn():
                self._record(name, subject, detail)
        return self.violations[before:]

    def arm(self, period_s: float = 0.5) -> None:
        """Sweep all checks every ``period_s`` simulated seconds.

        Idempotent; the sweep schedules only itself, draws no
        randomness, and mutates nothing, so armed runs produce
        byte-identical tables.
        """
        if period_s <= 0:
            raise ValueError("sweep period must be positive")
        if self._sweeping:
            return
        self._sweeping = True

        def sweep():
            while self._sweeping:
                yield self.sim.timeout(period_s)
                self.check_now()

        self.sim.process(sweep(), name="invariant-sweep")

    def disarm(self) -> None:
        """Stop the periodic sweep (explicit check_now keeps working)."""
        self._sweeping = False

    def verify(self) -> None:
        """Final audit: run every check, raise if anything ever broke.

        Before raising, the watched simulator's flight recorder is
        dumped — last events, metrics snapshot, high-water marks plus
        the violation list — and the error carries ``postmortem_path``
        so outer handlers (the CLI) don't dump a second time.
        """
        self.check_now()
        if self.violations:
            error = InvariantError(self.violations)
            from repro.telemetry import flightrec
            path = flightrec.write_postmortem(
                "invariant-violation", detail=str(error), sims=[self.sim],
                extra={"violations": [
                    {"time_s": v.time_s, "check": v.check,
                     "subject": v.subject, "detail": v.detail}
                    for v in self.violations[:100]]})
            if path:
                error.postmortem_path = path
            raise error

    def __repr__(self) -> str:
        return (f"<InvariantChecker checks={len(self._checks)} "
                f"run={self.checks_run} violations={len(self.violations)}>")
