"""Seed robustness: the headline orderings hold across random seeds.

A reproduction whose 'who wins' flips with the RNG seed hasn't
reproduced anything. These tests re-run the cheap experiments under
several seeds and assert the *orderings* (not the numbers) every time.
"""

import pytest

from repro.experiments import e5_coordination, e7_core_scaling, e8_hidden_terminal

SEEDS = [2, 7, 13]


@pytest.mark.parametrize("seed", SEEDS)
def test_e5_orderings_hold(seed):
    table = e5_coordination.run(n_aps=3, ue_per_ap=3, seed=seed)
    rows = {row["arm"]: row for row in table.rows}
    fair = rows["dLTE fair-sharing"]
    coop = rows["dLTE cooperative"]
    wifi = rows["legacy WiFi (CSMA)"]
    uncoord = rows["dLTE uncoordinated"]
    # the four relations E5's conclusion rests on
    assert fair["aggregate_mbps"] > wifi["aggregate_mbps"]
    assert coop["jain_fairness"] >= fair["jain_fairness"]
    assert coop["min_ue_mbps"] > uncoord["min_ue_mbps"]
    assert uncoord["jain_fairness"] < coop["jain_fairness"]


@pytest.mark.parametrize("seed", SEEDS)
def test_e7_orderings_hold(seed):
    table = e7_core_scaling.run(ap_counts=[1, 64], ue_per_ap=8, seed=seed)
    central = [r for r in table.rows if r["architecture"] == "centralized EPC"]
    stubs = [r for r in table.rows if r["architecture"] == "dLTE stubs"]
    # stubs flat, centralized degrades, stubs always faster
    assert stubs[0]["mean_attach_ms"] == pytest.approx(
        stubs[-1]["mean_attach_ms"], abs=2.0)
    assert central[-1]["mean_attach_ms"] > central[0]["mean_attach_ms"]
    for c, s in zip(central, stubs):
        assert s["mean_attach_ms"] < c["mean_attach_ms"]


@pytest.mark.parametrize("seed", SEEDS)
def test_e8_orderings_hold(seed):
    table = e8_hidden_terminal.run(ap_counts=[4, 16], seed=seed)
    rows = table.rows
    # density hurts CSMA; the registry never collides
    assert rows[1]["csma_collision_rate"] > rows[0]["csma_collision_rate"]
    for row in rows:
        assert row["registry_collision_rate"] == 0.0
        assert row["registry_utilization"] > row["csma_utilization"]
