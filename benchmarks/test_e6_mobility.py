"""Bench E6 — mobility: endpoint transports vs MME-masked handover (§4.2)."""

from conftest import emit, once

from repro.experiments import e6_mobility


def test_e6_mobility(benchmark):
    table = once(benchmark, e6_mobility.run)
    emit(table)
    by_arm = {}
    for row in table.rows:
        by_arm.setdefault(row["arm"], []).append(row)
    carrier = by_arm["carrier"]
    tcp = by_arm["dlte-tcp"]
    quic = by_arm["dlte-quic"]

    # the carrier masks mobility: no reconnects, tiny stall fraction at
    # every speed — but pays the anchor detour in steady throughput
    assert all(row["reconnects"] == 0 for row in carrier)
    assert all(row["stall_fraction"] < 0.05 for row in carrier)

    # dLTE+TCP dies and re-handshakes at every AP change
    assert all(row["reconnects"] >= 3 for row in tcp)
    # and collapses as dwell shrinks toward the RTT scale
    assert tcp[-1]["stall_fraction"] > 0.2
    assert tcp[-1]["throughput_mbps"] < 0.7 * tcp[0]["throughput_mbps"]

    # dLTE+QUIC never reconnects and out-delivers the carrier at low
    # speed (shorter path), degrading only gently with speed —
    # the paper's claim that modern transports make endpoint mobility
    # workable
    assert all(row["reconnects"] == 0 for row in quic)
    assert quic[0]["throughput_mbps"] > carrier[0]["throughput_mbps"]
    for q, t in zip(quic, tcp):
        assert q["stall_fraction"] <= t["stall_fraction"] + 1e-9
    # the predicted breakdown: by dwell ~ 14x RTT, QUIC-dLTE has fallen
    # back to (or below) carrier throughput — this is where a hybrid
    # with co-located eNodeBs (§4.2) would take over
    assert quic[-1]["throughput_mbps"] < quic[0]["throughput_mbps"]


def test_e6_make_before_break(benchmark):
    """§4.2 extension: multiple-address soft handoff removes the gap."""
    table = once(benchmark, e6_mobility.make_before_break)
    emit(table)
    by_arm = {}
    for row in table.rows:
        by_arm.setdefault(row["arm"], []).append(row)
    for hard, soft in zip(by_arm["dlte-quic"], by_arm["dlte-quic-mbb"]):
        assert soft["stall_fraction"] < 0.02      # effectively seamless
        assert soft["throughput_mbps"] > hard["throughput_mbps"]
    # the ladder is ordered: hard <= X2-assisted <= make-before-break
    for hard, x2 in zip(by_arm["dlte-quic"], by_arm["dlte-quic-x2"]):
        assert x2["throughput_mbps"] >= hard["throughput_mbps"] * 0.98
    # soft handoff keeps near-line-rate even at one handover per second
    assert by_arm["dlte-quic-mbb"][-1]["throughput_mbps"] > 7.0


def test_e6_reconnect_cost_ablation(benchmark):
    table = once(benchmark, e6_mobility.quic_0rtt_ablation)
    emit(table)
    rows = {row["arm"]: row for row in table.rows}
    assert (rows["dlte-quic"]["worst_stall_s"]
            < rows["dlte-tcp"]["worst_stall_s"] * 0.6)
    # bulk goodput lands in the same band (TCP's fresh slow-start can
    # even edge ahead); the stall column is where the user feels it
    assert (rows["dlte-quic"]["throughput_mbps"]
            >= rows["dlte-tcp"]["throughput_mbps"] * 0.9)
