"""Smoke tests: the fast example scripts run end to end as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "open_federation.py",
    "ecosystem_advisor.py",
    "backhaul_failure.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_federation_example_shows_reconvergence():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "open_federation.py")],
        capture_output=True, text=True, timeout=180)
    out = result.stdout
    assert "ap0: 50/50 PRBs" in out      # alone at first
    assert "ap3: 12/50 PRBs" in out      # four-way split at the end


def test_backhaul_example_shows_relay():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "backhaul_failure.py")],
        capture_output=True, text=True, timeout=180)
    assert "fiber gets cut" in result.stdout
    assert "UNREACHABLE" not in result.stdout
