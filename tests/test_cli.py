"""Tests for the ``python -m repro`` experiment runner."""

import pytest

from repro.__main__ import main


def test_list_exits_clean(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("T1", "F1", "E3", "E14"):
        assert exp_id in out


def test_run_one_experiment(capsys):
    assert main(["T1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "dLTE" in out
    assert "[T1 done" in out


def test_run_multiple(capsys):
    assert main(["E12", "E13"]) == 0
    out = capsys.readouterr().out
    assert "E12" in out and "E13" in out


def test_unknown_id_errors(capsys):
    assert main(["E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_no_args_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()
