"""The metrics registry: named, labelled counters, gauges, histograms.

Every component that wants to be observable asks its registry for an
instrument once (at construction, so the hot path is an attribute access
plus an integer add) and then records into it unconditionally. Recording
is *passive*: no instrument ever draws randomness, schedules events, or
touches the simulated clock, so instrumented and uninstrumented runs are
bit-identical — the registry can stay enabled in benchmarks.

Naming convention (see OBSERVABILITY.md): dotted lowercase paths,
hierarchical by subsystem — ``net.link.dropped``, ``mac.csma.collisions``,
``epc.attach.completed`` — with instance identity carried in *labels*
(``link="air:ue3"``, ``cell="ap0-cell"``), so ``site3.mac.harq.retx``
style questions become ``registry.query("mac.harq.*")`` filtered by
label.

Histograms keep fixed buckets (cumulative, Prometheus-style ``le``
bounds) *and* streaming quantiles via the P² algorithm (Jain & Chlamtac,
1985): p50/p95/p99 in O(1) memory without storing samples.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "P2Quantile", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds: half-decade geometric ladder
#: wide enough for both latencies in seconds and counts/sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
    1.0, 3.0, 10.0, 30.0, 100.0, 1e3, 1e4, 1e6, float("inf"))


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    # nearly every instrument carries zero or one label; skip the
    # generator + sort machinery for those (a sort of one item is a
    # no-op, so the result is identical)
    if len(labels) <= 1:
        return tuple((k, str(v)) for k, v in labels.items())
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity: a dotted name plus a frozen label set."""

    __slots__ = ("name", "labels")
    kind = "instrument"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels

    @property
    def full_name(self) -> str:
        """``name{k=v,...}`` rendering used by exporters and tables."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.full_name}>"


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def row(self) -> Dict[str, Any]:
        """Snapshot row for exporters."""
        return {"kind": self.kind, "name": self.name, "labels": self.labels,
                "value": self.value}


class Gauge(_Instrument):
    """A value that goes up and down; remembers its extremes."""

    __slots__ = ("value", "min", "max", "updates")
    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def add(self, delta: float) -> None:
        """Shift the current level by ``delta``."""
        self.set(self.value + delta)

    def row(self) -> Dict[str, Any]:
        """Snapshot row for exporters."""
        return {"kind": self.kind, "name": self.name, "labels": self.labels,
                "value": self.value,
                "min": self.min if self.updates else 0.0,
                "max": self.max if self.updates else 0.0}


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Tracks one quantile ``q`` with five markers and parabolic marker
    adjustment — no sample storage, fully deterministic in the order of
    observations. Exact for the first five samples.

    The marker state lives in scalar slots (``_h0``..``_h4`` heights,
    ``_n1``..``_n4`` positions, ``_d1``..``_d3`` desired positions)
    rather than lists: ``observe`` runs three times per histogram
    sample on the E7 hot path, and straight-line float code over slots
    beats list indexing by ~2x while computing operation-for-operation
    the same arithmetic as the textbook loops (marker 0's position is
    pinned at 1.0 and desired positions 0/4 are never read, so neither
    is stored). ``_warmup`` collects the first five samples, then the
    markers take over.
    """

    __slots__ = ("q", "n", "_warmup",
                 "_h0", "_h1", "_h2", "_h3", "_h4",
                 "_n1", "_n2", "_n3", "_n4",
                 "_d1", "_d2", "_d3", "_i1", "_i2", "_i3")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self.n = 0
        self._warmup: Optional[List[float]] = []
        self._h0 = self._h1 = self._h2 = self._h3 = self._h4 = 0.0
        self._n1, self._n2, self._n3, self._n4 = 2.0, 3.0, 4.0, 5.0
        self._d1 = 1.0 + 2.0 * q
        self._d2 = 1.0 + 4.0 * q
        self._d3 = 3.0 + 2.0 * q
        self._i1 = q / 2.0
        self._i2 = q
        self._i3 = (1.0 + q) / 2.0

    def observe(self, x: float) -> None:
        """Feed one sample."""
        self.n += 1
        warmup = self._warmup
        if warmup is not None:
            warmup.append(x)
            warmup.sort()
            if len(warmup) == 5:
                (self._h0, self._h1, self._h2,
                 self._h3, self._h4) = warmup
                self._warmup = None
            return
        # locate the cell containing x, clamping the extremes
        h0 = self._h0
        h1 = self._h1
        h2 = self._h2
        h3 = self._h3
        h4 = self._h4
        if x < h0:
            self._h0 = h0 = x
            k = 0
        elif x >= h4:
            self._h4 = h4 = x
            k = 3
        elif x < h1:
            k = 0
        elif x < h2:
            k = 1
        elif x < h3:
            k = 2
        else:
            k = 3
        # markers above the cell shift right (marker 0 never moves)
        n1 = self._n1
        n2 = self._n2
        n3 = self._n3
        if k == 0:
            n1 += 1.0
            n2 += 1.0
            n3 += 1.0
        elif k == 1:
            n2 += 1.0
            n3 += 1.0
        elif k == 2:
            n3 += 1.0
        n4 = self._n4 + 1.0
        self._n4 = n4
        d1 = self._d1 = self._d1 + self._i1
        d2 = self._d2 = self._d2 + self._i2
        d3 = self._d3 = self._d3 + self._i3
        # adjust interior markers toward their desired positions: the
        # parabolic formula with a linear fallback, evaluated with the
        # exact operation order of Jain & Chlamtac. The three blocks
        # run sequentially — marker 2 sees marker 1's updated state.
        d = d1 - n1
        if (d >= 1.0 and n2 - n1 > 1.0) or (d <= -1.0 and 1.0 - n1 < -1.0):
            step = 1.0 if d >= 1.0 else -1.0
            candidate = h1 + step / (n2 - 1.0) * (
                (n1 - 1.0 + step) * (h2 - h1) / (n2 - n1)
                + (n2 - n1 - step) * (h1 - h0) / (n1 - 1.0))
            if h0 < candidate < h2:
                h1 = candidate
            elif step == 1.0:
                h1 = h1 + step * (h2 - h1) / (n2 - n1)
            else:
                h1 = h1 + step * (h0 - h1) / (1.0 - n1)
            self._h1 = h1
            n1 += step
        d = d2 - n2
        if (d >= 1.0 and n3 - n2 > 1.0) or (d <= -1.0 and n1 - n2 < -1.0):
            step = 1.0 if d >= 1.0 else -1.0
            candidate = h2 + step / (n3 - n1) * (
                (n2 - n1 + step) * (h3 - h2) / (n3 - n2)
                + (n3 - n2 - step) * (h2 - h1) / (n2 - n1))
            if h1 < candidate < h3:
                h2 = candidate
            elif step == 1.0:
                h2 = h2 + step * (h3 - h2) / (n3 - n2)
            else:
                h2 = h2 + step * (h1 - h2) / (n1 - n2)
            self._h2 = h2
            n2 += step
        d = d3 - n3
        if (d >= 1.0 and n4 - n3 > 1.0) or (d <= -1.0 and n2 - n3 < -1.0):
            step = 1.0 if d >= 1.0 else -1.0
            candidate = h3 + step / (n4 - n2) * (
                (n3 - n2 + step) * (h4 - h3) / (n4 - n3)
                + (n4 - n3 - step) * (h3 - h2) / (n3 - n2))
            if h2 < candidate < h4:
                h3 = candidate
            elif step == 1.0:
                h3 = h3 + step * (h4 - h3) / (n4 - n3)
            else:
                h3 = h3 + step * (h2 - h3) / (n2 - n3)
            self._h3 = h3
            n3 += step
        self._n1 = n1
        self._n2 = n2
        self._n3 = n3

    @property
    def estimate(self) -> float:
        """Current quantile estimate (nan before any sample)."""
        warmup = self._warmup
        if warmup is not None:
            if not warmup:
                return float("nan")
            # exact small-sample quantile (nearest-rank interpolation)
            idx = self.q * (len(warmup) - 1)
            lo = int(idx)
            hi = min(lo + 1, len(warmup) - 1)
            frac = idx - lo
            return warmup[lo] * (1 - frac) + warmup[hi] * frac
        return self._h2


class Histogram(_Instrument):
    """Fixed cumulative buckets plus streaming p50/p95/p99.

    Quantile tracking is *deferred*: samples are appended to a bounded
    pending buffer and replayed — in arrival order, so the P² estimates
    are bit-identical to eager updates — only when a quantile is
    actually read or the buffer fills. Most histograms in a run are
    never queried for quantiles, which makes ``observe`` an O(1) append
    on the hot path (the control-plane queue-wait histograms dominated
    E7's profile before this). Memory stays bounded by
    :data:`PENDING_CAP` samples per histogram.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max",
                 "_quantiles", "_pending", "_bucket_arr")
    kind = "histogram"

    QUANTILES = (0.5, 0.95, 0.99)
    #: flush the pending-sample buffer into the P² trackers at this size
    PENDING_CAP = 4096

    def __init__(self, name: str, labels: Dict[str, str],
                 buckets: Optional[Sequence[float]] = None,
                 quantiles: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, labels)
        bounds = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: buckets must be sorted")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = tuple(P2Quantile(q)
                                for q in (quantiles or self.QUANTILES))
        self._pending: List[float] = []
        self._bucket_arr: Optional[np.ndarray] = None

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of samples, bit-identically to calling
        :meth:`observe` per element in order.

        The running sum is accumulated sequentially (same additions in
        the same order as the scalar path); bucket placement vectorizes
        through ``np.searchsorted`` (identical index semantics to
        ``bisect_left``); pending quantile samples are appended in
        arrival order, so the deferred P² replay sees the same sequence
        regardless of flush boundaries. This is the batch TTI engine's
        per-cell SINR observation path.
        """
        vals = np.asarray(values, dtype=float).tolist()
        if not vals:
            return
        self.count += len(vals)
        total = self.sum
        for value in vals:
            total += value
        self.sum = total
        lo = min(vals)
        hi = max(vals)
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        if self._bucket_arr is None:
            self._bucket_arr = np.array(self.buckets)
        idx = np.searchsorted(self._bucket_arr, vals, side="left")
        counts = np.bincount(idx, minlength=len(self.bucket_counts))
        bucket_counts = self.bucket_counts
        for i, c in enumerate(counts.tolist()):
            if c:
                bucket_counts[i] += c
        pending = self._pending
        pending.extend(vals)
        if len(pending) >= self.PENDING_CAP:
            self._flush_quantiles()

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # first bound with value <= bound, by binary search — the index
        # bisect_left returns is exactly the one the linear scan found
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        pending = self._pending
        pending.append(value)
        if len(pending) >= self.PENDING_CAP:
            self._flush_quantiles()

    def _flush_quantiles(self) -> None:
        """Replay buffered samples into the P² trackers, in order."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        trackers = self._quantiles
        if len(trackers) == 3:  # the default p50/p95/p99, unrolled
            q50, q95, q99 = trackers
            for value in pending:
                q50.observe(value)
                q95.observe(value)
                q99.observe(value)
            return
        # custom quantile sets (e.g. E17's p999): trackers are
        # independent, so per-tracker replay order is equivalent
        for tracker in trackers:
            for value in pending:
                tracker.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (nan when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Streaming estimate for one of the tracked quantiles."""
        self._flush_quantiles()
        for tracker in self._quantiles:
            if tracker.q == q:
                return tracker.estimate
        raise KeyError(f"quantile {q} not tracked "
                       f"(have {tuple(t.q for t in self._quantiles)})")

    def _row_quantile(self, q: float) -> float:
        """``row()`` helper: tracked estimate, or 0.0 when this histogram
        was created with a custom quantile set that omits ``q``."""
        for tracker in self._quantiles:
            if tracker.q == q:
                return tracker.estimate
        return 0.0

    def row(self) -> Dict[str, Any]:
        """Snapshot row for exporters."""
        empty = self.count == 0
        self._flush_quantiles()
        return {"kind": self.kind, "name": self.name, "labels": self.labels,
                "count": self.count, "sum": self.sum,
                "min": 0.0 if empty else self.min,
                "max": 0.0 if empty else self.max,
                "mean": 0.0 if empty else self.mean,
                "p50": 0.0 if empty else self._row_quantile(0.5),
                "p95": 0.0 if empty else self._row_quantile(0.95),
                "p99": 0.0 if empty else self._row_quantile(0.99)}


class MetricsRegistry:
    """Get-or-create instrument store, keyed by (name, labels).

    Asking twice for the same (name, labels) returns the same object;
    asking for an existing name with a different *kind* raises, which
    catches name collisions between subsystems early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                                _Instrument] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        if not name:
            raise ValueError("instrument name must be non-empty")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, dict(key[1]), **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{name} already registered as {instrument.kind}, "
                f"not {cls.kind}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  quantiles: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        """Get or create a histogram (``buckets``/``quantiles`` only
        apply on create)."""
        return self._get(Histogram, name, labels, buckets=buckets,
                         quantiles=quantiles)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterable[_Instrument]:
        return iter(sorted(self._instruments.values(),
                           key=lambda i: (i.name, sorted(i.labels.items()))))

    def query(self, pattern: str) -> List[_Instrument]:
        """Instruments whose name matches a dotted prefix pattern.

        ``"mac.csma.*"`` (or ``"mac.csma"``) matches everything under
        that path; an exact name matches just that instrument family.
        """
        prefix = pattern[:-2] if pattern.endswith(".*") else pattern
        return [i for i in self
                if i.name == prefix or i.name.startswith(prefix + ".")]

    def value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value for an exact (name, labels); 0 if absent."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(i.value for i in self
                   if i.name == name and isinstance(i, Counter))

    def subsystems(self) -> List[str]:
        """Distinct first name components with at least one instrument."""
        return sorted({i.name.split(".", 1)[0] for i in self})

    def snapshot(self) -> List[Dict[str, Any]]:
        """All instruments as exporter rows, deterministically ordered."""
        return [i.row() for i in self]

    def clear(self) -> None:
        """Forget every instrument (tests only; cached refs go stale)."""
        self._instruments.clear()
