"""Statistics helpers used across experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def _as_float_array(values) -> np.ndarray:
    """Coerce samples to a float ndarray without needless copies.

    A float ndarray passes through untouched; other ndarrays and
    sequences convert directly; generators (which ``np.asarray`` would
    wrap as a 0-d object array) are materialized first.
    """
    if isinstance(values, np.ndarray):
        return values.astype(float, copy=False)
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=float)
    return np.asarray(list(values), dtype=float)


def jain_fairness(allocations: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 = perfectly equal; 1/n = one user gets everything. The metric the
    paper implies when claiming fair sharing achieves "similar fairness
    characteristics to what WiFi achieves today" (§4.3).
    """
    xs = _as_float_array(allocations)
    if xs.size == 0:
        raise ValueError("fairness of an empty allocation is undefined")
    if (xs < 0).any():
        raise ValueError("allocations must be non-negative")
    denom = xs.size * float((xs ** 2).sum())
    if denom == 0:
        return 1.0  # all-zero: degenerate but equal
    return float(xs.sum()) ** 2 / denom


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100), linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("percentile of empty data is undefined")
    return float(np.percentile(arr, q))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / min / max / count in one dict."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("cannot summarize empty data")
    # One percentile call sorts once for both quantiles (np.median is
    # just the 50th percentile; computing them separately sorts twice).
    median, p95 = np.percentile(arr, [50, 95])
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(median),
        "p95": float(p95),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


@dataclass
class TimeSeries:
    """An append-only (time, value) series with rate/interval analysis."""

    name: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time_s: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self.points and time_s < self.points[-1][0]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time_s} < {self.points[-1][0]}")
        self.points.append((time_s, value))

    @property
    def times(self) -> List[float]:
        """Sample times."""
        return [t for t, _v in self.points]

    @property
    def values(self) -> List[float]:
        """Sample values."""
        return [v for _t, v in self.points]

    def rate_per_s(self) -> float:
        """(last - first value) / elapsed, for cumulative counters."""
        if len(self.points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = self.points[0], self.points[-1]
        if t1 == t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    def gaps_longer_than(self, threshold_s: float) -> List[Tuple[float, float]]:
        """Sample intervals exceeding ``threshold_s`` (stall detection)."""
        return [(t0, t1) for (t0, _), (t1, _)
                in zip(self.points, self.points[1:])
                if t1 - t0 > threshold_s]

    def __len__(self) -> int:
        return len(self.points)
