"""Unit tests for sector antennas and sectorized sites."""

import math

import pytest

from repro.enodeb import SectorSite
from repro.enodeb.cell import UeRadioContext
from repro.geo import Point
from repro.phy import (
    LinkBudget,
    OkumuraHata,
    OmniAntenna,
    Radio,
    SectorAntenna,
    get_band,
    sector_boresights,
)


# -- antenna patterns -----------------------------------------------------------

def test_boresight_gain_is_peak():
    ant = SectorAntenna(boresight_rad=0.0, peak_gain_dbi=15.0)
    assert ant.gain_dbi(0.0) == 15.0


def test_gain_drops_3db_at_half_beamwidth():
    bw = math.radians(65)
    ant = SectorAntenna(boresight_rad=0.0, peak_gain_dbi=15.0,
                        beamwidth_rad=bw)
    assert ant.gain_dbi(bw / 2) == pytest.approx(12.0)
    assert ant.gain_dbi(-bw / 2) == pytest.approx(12.0)


def test_back_lobe_floor():
    ant = SectorAntenna(boresight_rad=0.0, peak_gain_dbi=15.0,
                        front_to_back_db=25.0)
    assert ant.gain_dbi(math.pi) == pytest.approx(-10.0)  # 15 - 25


def test_pattern_symmetric_and_wrapped():
    ant = SectorAntenna(boresight_rad=math.radians(90))
    for off in (0.3, 0.9, 2.0):
        assert (ant.gain_dbi(math.radians(90) + off)
                == pytest.approx(ant.gain_dbi(math.radians(90) - off)))
    # wrapping: boresight near pi still behaves
    ant2 = SectorAntenna(boresight_rad=math.pi)
    assert ant2.gain_dbi(-math.pi) == ant2.peak_gain_dbi


def test_gain_toward_points():
    ant = SectorAntenna(boresight_rad=0.0, peak_gain_dbi=15.0)
    origin = Point(0, 0)
    assert ant.gain_toward(origin, Point(100, 0)) == 15.0
    assert ant.gain_toward(origin, Point(-100, 0)) < 0.0
    assert ant.gain_toward(origin, origin) == 15.0  # degenerate


def test_omni_is_flat():
    omni = OmniAntenna(peak_gain_dbi=6.0)
    for angle in (-3, 0, 1, 3):
        assert omni.gain_dbi(angle) == 6.0


def test_antenna_validation():
    with pytest.raises(ValueError):
        SectorAntenna(0.0, beamwidth_rad=0)
    with pytest.raises(ValueError):
        SectorAntenna(0.0, front_to_back_db=-1)
    with pytest.raises(ValueError):
        sector_boresights(0)


def test_boresights_evenly_spaced():
    bs = sector_boresights(3)
    assert bs[0] == 0.0
    assert bs[1] == pytest.approx(2 * math.pi / 3)
    assert bs[2] == pytest.approx(4 * math.pi / 3)


# -- directional link budget -----------------------------------------------------

def _budget():
    band = get_band("lte5")
    return band, LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                            band.bandwidth_hz)


def test_radio_directional_gain_in_link_budget():
    band, lb = _budget()
    ap = Radio(Point(0, 0), tx_power_dbm=43, height_m=30,
               antenna=SectorAntenna(boresight_rad=0.0, peak_gain_dbi=15))
    front = Radio(Point(5000, 0), tx_power_dbm=23)
    back = Radio(Point(-5000, 0), tx_power_dbm=23)
    delta = lb.rx_power_dbm(ap, front) - lb.rx_power_dbm(ap, back)
    assert delta == pytest.approx(25.0)  # the front-to-back ratio


def test_radio_scalar_gain_unchanged_without_pattern():
    band, lb = _budget()
    ap = Radio(Point(0, 0), tx_power_dbm=43, antenna_gain_dbi=15,
               height_m=30)
    front = Radio(Point(5000, 0), tx_power_dbm=23)
    back = Radio(Point(-5000, 0), tx_power_dbm=23)
    assert lb.rx_power_dbm(ap, front) == lb.rx_power_dbm(ap, back)


def test_sector_beats_omni_in_lobe():
    """The Papua trade: 15 dBi sectors vs a 6 dBi omni."""
    band, lb = _budget()
    sector_ap = Radio(Point(0, 0), tx_power_dbm=43, height_m=30,
                      antenna=SectorAntenna(0.0, peak_gain_dbi=15))
    omni_ap = Radio(Point(0, 0), tx_power_dbm=43, height_m=30,
                    antenna=OmniAntenna(peak_gain_dbi=6))
    ue = Radio(Point(8000, 0), tx_power_dbm=23)
    assert (lb.rx_power_dbm(sector_ap, ue)
            == pytest.approx(lb.rx_power_dbm(omni_ap, ue) + 9.0))


# -- sector sites --------------------------------------------------------------------

def _site(n_sectors=2):
    band, lb = _budget()
    return SectorSite("gym", band, Point(0, 0), lb, n_sectors=n_sectors)


def test_site_builds_sectors_with_spread_boresights():
    site = _site(2)
    assert site.n_sectors == 2
    b0 = site.cells[0].radio.antenna.boresight_rad
    b1 = site.cells[1].radio.antenna.boresight_rad
    assert abs(b1 - b0) == pytest.approx(math.pi)


def test_best_sector_follows_geometry():
    site = _site(2)
    east = Radio(Point(3000, 0), tx_power_dbm=23)
    west = Radio(Point(-3000, 0), tx_power_dbm=23)
    assert site.best_sector(east) is site.cells[0]
    assert site.best_sector(west) is site.cells[1]


def test_add_ue_steers_to_best_sector():
    site = _site(2)
    east = UeRadioContext("east", Radio(Point(3000, 100), tx_power_dbm=23))
    west = UeRadioContext("west", Radio(Point(-3000, -100), tx_power_dbm=23))
    assert site.add_ue(east).name == "gym-s0"
    assert site.add_ue(west).name == "gym-s1"
    loads = site.attached_by_sector()
    assert loads == {"gym-s0": ["east"], "gym-s1": ["west"]}
    site.remove_ue("east")
    assert site.attached_by_sector()["gym-s0"] == []


def test_two_sectors_double_capacity():
    """Two sectors serve opposite lobes concurrently on the same carrier."""
    band, lb = _budget()
    site = _site(2)
    site.add_ue(UeRadioContext("e", Radio(Point(2000, 0), tx_power_dbm=23)))
    site.add_ue(UeRadioContext("w", Radio(Point(-2000, 0), tx_power_dbm=23)))
    delivered = site.schedule_tti()
    assert set(delivered) == {"e", "w"}
    # each UE gets nearly a full grid's worth despite one shared carrier
    single_cell_bits = max(delivered.values())
    assert min(delivered.values()) > 0.5 * single_cell_bits


def test_site_validates():
    band, lb = _budget()
    with pytest.raises(ValueError):
        SectorSite("x", band, Point(0, 0), lb, n_sectors=0)
