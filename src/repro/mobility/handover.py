"""Handover triggering: the A3 measurement rule, architecture-agnostic.

LTE UEs report "event A3" when a neighbour cell's reference signal beats
the serving cell's by a hysteresis margin, sustained for a time-to-
trigger. What happens *next* differs per architecture (path switch vs
re-attach); the trigger itself is identical, so both E6 arms use this
class and the comparison isolates the architectural difference.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.enodeb.cell import Cell
from repro.phy.linkbudget import Radio

HandoverCallback = Callable[[str, str], None]  # (from_cell, to_cell)


def dwell_time_s(ap_spacing_m: float, speed_m_s: float) -> float:
    """Mean time a road client spends per AP — the §4.2 breakdown knob.

    The paper: dLTE "may break down … particularly as the client's time
    on a single AP approaches the same order of magnitude as a round
    trip to an in use OTT service."
    """
    if speed_m_s <= 0:
        raise ValueError("speed must be positive")
    if ap_spacing_m <= 0:
        raise ValueError("spacing must be positive")
    return ap_spacing_m / speed_m_s


class A3HandoverTrigger:
    """Tracks RSRP across cells and fires when A3 holds for TTT.

    Call :meth:`measure` on every position update; it returns (and also
    delivers via callback) the target cell name when a handover should
    happen, else None.
    """

    def __init__(self, cells: Sequence[Cell], serving_cell: str,
                 hysteresis_db: float = 3.0, time_to_trigger_s: float = 0.5,
                 on_handover: Optional[HandoverCallback] = None) -> None:
        if hysteresis_db < 0 or time_to_trigger_s < 0:
            raise ValueError("hysteresis and TTT must be non-negative")
        self.cells: Dict[str, Cell] = {c.name: c for c in cells}
        if serving_cell not in self.cells:
            raise KeyError(f"serving cell {serving_cell!r} not in cell set")
        self.serving = serving_cell
        self.hysteresis_db = hysteresis_db
        self.time_to_trigger_s = time_to_trigger_s
        self.on_handover = on_handover
        self._candidate: Optional[str] = None
        self._candidate_since: Optional[float] = None
        self.handovers = 0

    def rsrp_map(self, ue_radio: Radio) -> Dict[str, float]:
        """Current RSRP from every cell at the UE."""
        return {name: cell.rsrp_to(ue_radio)
                for name, cell in self.cells.items()}

    def measure(self, now_s: float, ue_radio: Radio) -> Optional[str]:
        """One measurement round; returns the HO target when triggered."""
        rsrp = self.rsrp_map(ue_radio)
        serving_rsrp = rsrp[self.serving]
        best_name = max((n for n in rsrp if n != self.serving),
                        key=lambda n: rsrp[n], default=None)
        if (best_name is None
                or rsrp[best_name] <= serving_rsrp + self.hysteresis_db):
            self._candidate = None
            self._candidate_since = None
            return None
        if self._candidate != best_name:
            self._candidate = best_name
            self._candidate_since = now_s
            if self.time_to_trigger_s > 0:
                return None
        elif now_s - self._candidate_since < self.time_to_trigger_s:
            return None
        # triggered
        source = self.serving
        self.serving = best_name
        self._candidate = None
        self._candidate_since = None
        self.handovers += 1
        if self.on_handover is not None:
            self.on_handover(source, best_name)
        return best_name
