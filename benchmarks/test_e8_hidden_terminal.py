"""Bench E8 — hidden terminals: CSMA vs the license registry (§4.3)."""

from conftest import emit, once

from repro.experiments import e8_hidden_terminal


def test_e8_hidden_terminal_field(benchmark):
    table = once(benchmark, e8_hidden_terminal.run)
    emit(table)
    # the registry arm never collides and keeps its scheduled airtime
    assert all(row["registry_collision_rate"] == 0.0 for row in table.rows)
    assert all(row["registry_utilization"] > 0.9 for row in table.rows)
    # CSMA degrades with density; at high density it collapses
    collisions = table.column("csma_collision_rate")
    assert collisions == sorted(collisions)
    assert collisions[-1] > 0.5
    utilizations = table.column("csma_utilization")
    assert utilizations[-1] < 0.3
    # hidden pairs grow with density
    hidden = table.column("hidden_pairs")
    assert hidden[-1] > hidden[0]


def test_e8_sensing_ablation(benchmark):
    """§6: cognitive-radio sensing sweep — sensitivity is not a database."""
    table = once(benchmark, e8_hidden_terminal.sensing_ablation)
    emit(table)
    hiddens = table.column("hidden_pairs")
    collisions = table.column("collision_rate")
    # longer sensing range removes hidden pairs and collisions...
    assert hiddens == sorted(hiddens, reverse=True)
    assert collisions == sorted(collisions, reverse=True)
    # ...but even the most sensitive config stays below the registry's
    # scheduled utilization (exposed terminals serialize the area)
    assert max(table.column("utilization")) < 0.9


def test_e8_classic_triple(benchmark):
    table = once(benchmark, e8_hidden_terminal.classic_three_node)
    emit(table)
    rows = {row["scenario"]: row for row in table.rows}
    assert (rows["hidden"]["collision_rate"]
            > 1.5 * rows["connected"]["collision_rate"])
    assert rows["hidden"]["utilization"] < rows["connected"]["utilization"]
