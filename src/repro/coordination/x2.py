"""X2-AP over the Internet: the dLTE peer protocol.

The LTE spec already defines X2 for eNodeB-to-eNodeB handover and load
information (§4.3, ref [19]); dLTE "will run a version of X2 extended
with information about the dLTE operating mode and dLTE peer status."
Here the messages are dataclasses with representative sizes, and an
:class:`X2Endpoint` manages one AP's set of peer channels, counting
every byte — the raw material for E9's "sizing X2 bandwidth" analysis
(ref [28]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.simcore.simulator import Simulator


@dataclass
class X2Message:
    """Base X2-AP message."""

    sender_ap: str
    size_bytes: int = 100


@dataclass
class LoadInformation(X2Message):
    """Periodic load/interference report (standard X2)."""

    prb_utilization: float = 0.0
    attached_ues: int = 0
    size_bytes: int = 150


@dataclass
class HandoverRequest(X2Message):
    """Source AP -> target AP: take this UE (X2 handover).

    ``key_context`` carries the UE's cached authentication material so
    the target stub can admit the client without a registry fetch —
    the dLTE analogue of LTE's X2 security-context transfer, and the
    paper's "fast re-authentication technologies" (§6).
    """

    ue_id: str = ""
    imsi: str = ""
    key_context: Optional[bytes] = None
    size_bytes: int = 250


@dataclass
class HandoverRequestAck(X2Message):
    """Target AP -> source AP: admitted; UE may be told to move."""

    ue_id: str = ""
    admitted: bool = True
    size_bytes: int = 150


@dataclass
class DlteModeInfo(X2Message):
    """dLTE extension: operating mode + peer status (§4.3)."""

    mode: str = "fair-sharing"       # or "cooperative"
    peer_status: str = "active"
    size_bytes: int = 120


@dataclass
class PrbClaim(X2Message):
    """dLTE extension: this AP's claim on the shared grid.

    ``demand_weight`` is 1.0 for plain fair sharing; demand-weighted
    sharing (the E5 ablation) reports actual load.
    """

    n_prbs: int = 0
    demand_weight: float = 1.0
    epoch: int = 0
    size_bytes: int = 130


class X2Endpoint(ControlAgent):
    """One AP's X2 stack: peer channels, dispatch, byte accounting."""

    def __init__(self, sim: Simulator, ap_id: str,
                 service_time_s: float = 0.2e-3) -> None:
        super().__init__(sim, f"x2:{ap_id}", service_time_s)
        self.ap_id = ap_id
        self.peers: Dict[str, ControlChannel] = {}
        self.handlers: List[Callable[[str, X2Message], None]] = []
        #: called with the peer ap_id whenever a new channel is
        #: established (either side may initiate); liveness monitors use
        #: this to grant a fresh window instead of judging a rejoining
        #: peer by its stale pre-crash timestamp
        self.on_peer_connected: List[Callable[[str], None]] = []
        self.bytes_sent = 0
        self.messages_sent = 0

    def connect_peer(self, peer: "X2Endpoint",
                     one_way_delay_s: float) -> ControlChannel:
        """Create (or return) the bidirectional channel to ``peer``.

        Internet-backhaul latency lives here: two rural APs peering over
        a national ISP can easily see tens of ms.
        """
        if peer.ap_id in self.peers:
            return self.peers[peer.ap_id]
        channel = ControlChannel(self.sim, self, peer, one_way_delay_s,
                                 name=f"x2:{self.ap_id}<->{peer.ap_id}")
        self.peers[peer.ap_id] = channel
        peer.peers[self.ap_id] = channel
        for hook in self.on_peer_connected:
            hook(peer.ap_id)
        for hook in peer.on_peer_connected:
            hook(self.ap_id)
        return channel

    def disconnect_peer(self, peer_ap_id: str) -> None:
        """Drop the peering (both directions)."""
        channel = self.peers.pop(peer_ap_id, None)
        if channel is not None:
            other = channel.other_end(self)
            if isinstance(other, X2Endpoint):
                other.peers.pop(self.ap_id, None)

    @property
    def peer_ids(self) -> FrozenSet[str]:
        """Currently connected peer AP ids."""
        return frozenset(self.peers)

    def send(self, peer_ap_id: str, message: X2Message) -> None:
        """Send to one peer (KeyError if not connected)."""
        channel = self.peers[peer_ap_id]
        self.bytes_sent += message.size_bytes
        self.messages_sent += 1
        channel.send(self, message)

    def broadcast(self, message: X2Message) -> None:
        """Send to every connected peer."""
        for peer_ap_id in list(self.peers):
            self.send(peer_ap_id, message)

    def add_handler(self, handler: Callable[[str, X2Message], None]) -> None:
        """Subscribe to inbound messages: ``handler(from_ap, message)``."""
        self.handlers.append(handler)

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if not isinstance(payload, X2Message):
            return
        for handler in self.handlers:
            handler(payload.sender_ap, payload)
